package service

// The chaos/soak suite: boot benchd against a seeded fault schedule,
// hammer it with concurrent submitters and readers, and assert the
// system's invariants held — no lost or duplicated results, no torn
// perflog lines, the store converges to filesystem truth, and every
// injected fault was either retried into success or surfaced as a
// typed error. Run under the race detector in CI:
//
//	CHAOS_SEED=42 go test -race -run Chaos -count=2 ./internal/service
//
// The seed fixes every fault decision (see faultinject), so a failure
// reproduces by exporting the same CHAOS_SEED.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eventbus"
	"repro/internal/faultinject"
	"repro/internal/fom"
	"repro/internal/obs"
	"repro/internal/perflog"
	"repro/internal/perfstore"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

// chaosSchedule arms distinct fault classes in the hot paths —
// transient scheduler rejections, transient build failures, short
// perfstore reads, and failed perflog commits — plus occasional
// submission-path faults so clients see honest 503s. perflog.sync
// faults fire against both write paths (the daemon's group-commit
// Writer and the out-of-band one-shot appender below); the point fires
// before any byte lands, so a faulted commit fails its whole batch
// without acknowledging or stranding a line, and the exact-accounting
// invariants below stay provable.
const chaosSchedule = "scheduler.submit:error:rate=0.25," +
	"buildsys.install:error:rate=0.2," +
	"perfstore.read:short:bytes=64:every=7," +
	"perflog.sync:error:every=6," +
	"service.submit:error:rate=0.15:times=8," +
	// Continuous-benchmarking paths: skipped scheduler ticks (schedules
	// fire late, never twice), failed event publishes (bounded so the
	// loss accounting below stays tight; each is retried by the
	// service's publish policy), and broken /v1/watch stream writes
	// (clients reconnect and replay via Last-Event-ID).
	"cbsched.tick:error:rate=0.15," +
	"eventbus.publish:error:rate=0.2:times=6," +
	"service.watchwrite:error:rate=0.03," +
	// Self-observability paths: skipped sampler ticks (history gets a
	// gap, alert evaluation waits for the next tick, state never tears),
	// failed history flushes (the previous on-disk snapshot survives
	// intact — atomic write), and failed pprof captures (exactly the two
	// capture attempts of the canary alert's fire, which must not stop
	// the alert itself from firing). every= rather than rate= so the
	// fired-counter assertions below hold even on a machine fast enough
	// to finish the soak in a handful of sampler ticks.
	"obs.sample:error:every=5," +
	"obs.historywrite:error:every=2," +
	"obs.profilecapture:error:times=2," +
	// Statistical-rigor path: a repetition inside an N-rep set fails.
	// The runner must either retry that repetition into a complete set
	// or fail the whole run — a persisted entry with a partial set, or
	// an n inflated by a retried rep counted twice, is a soak failure
	// (asserted below over every perflog line).
	"core.repetition:error:rate=0.15"

func TestChaosSoak(t *testing.T) { chaosSoak(t, "") }

// TestChaosSoakTiered runs the identical soak against a segment-backed
// store with an aggressive maintenance loop (tiny seal threshold, fast
// ticker, eager compaction) plus injected segment-write failures, so
// seals, compactions, and their retries all happen while the original
// fault schedule is firing.
func TestChaosSoakTiered(t *testing.T) { chaosSoak(t, t.TempDir()) }

func chaosSoak(t *testing.T, dataDir string) {
	seed := int64(42)
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
		}
		seed = n
	}
	dir := t.TempDir()
	perflogRoot := dir + "/perflogs"
	srv, err := New(Config{
		PerflogRoot: perflogRoot,
		InstallTree: dir + "/install",
		Workers:     4,
		QueueDepth:  32,
		DataDir:     dataDir,
		// Aggressive tiering so the soak crosses many seal/compact
		// cycles: seal every 4 head entries, compact at 2 segments,
		// tick the maintenance loop every 10ms.
		SealThreshold:       4,
		CompactSegments:     2,
		MaintenanceInterval: 10 * time.Millisecond,
		// Fast scheduler ticks and small subscriber rings so the
		// recurring schedule fires many times and the flapping watcher
		// genuinely overflows its ring during the soak.
		TickInterval:      25 * time.Millisecond,
		EventBuffer:       16,
		HeartbeatInterval: 100 * time.Millisecond,
		// Fast self-observability sampling with frequent history flushes
		// so the obs fault points get plenty of draws during the soak.
		SampleInterval:    25 * time.Millisecond,
		HistoryFlushEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A fast, shallow retry policy keeps the soak wall-clock short while
	// exercising both outcomes: most injected faults are absorbed by a
	// retry, and a few exhaust their attempts and surface as typed
	// failures.
	srv.Runner().Retry = retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Metric assertions are delta-based so the suite is stable under
	// -count=2 (the registry is process-global).
	reg := telemetry.DefaultRegistry
	firedBefore := reg.SumValues("faultinject_fired_total")
	retriesBefore := reg.SumValues("retry_retries_total")
	classBefore := map[string]float64{}
	for _, pk := range [][2]string{
		{"scheduler.submit", "error"}, {"buildsys.install", "error"}, {"perfstore.read", "short"},
		{"perflog.sync", "error"},
		{"cbsched.tick", "error"}, {"eventbus.publish", "error"},
		{"obs.sample", "error"}, {"obs.profilecapture", "error"},
		{"core.repetition", "error"},
	} {
		v, _ := reg.Value("faultinject_fired_total", pk[0], pk[1])
		classBefore[pk[0]+"|"+pk[1]] = v
	}

	schedule := chaosSchedule
	if dataDir != "" {
		// The first two segment writes fail outright: the maintenance
		// loop must absorb the failed seals and succeed on later ticks.
		schedule += ",perfstore.segwrite:error:times=2"
	}
	loadFaults(t, seed, schedule)

	exhaustedBefore, _ := reg.Value("retry_exhausted_total", "service.publish")

	// A persistent healthy watcher: a reconnecting /v1/watch consumer
	// that must end up having seen run.finished for every completed run
	// (minus at most the publishes the bus provably lost to exhausted
	// retries — counted, never silent). Stream kills from injected
	// watchwrite faults are recovered via Last-Event-ID replay.
	watchCtx, watchCancel := context.WithCancel(context.Background())
	defer watchCancel()
	var watchMu sync.Mutex
	watchSeen := map[string]bool{}
	// The same watcher also follows the alert lifecycle. Last-Event-ID
	// replay can redeliver events across reconnects, so alert events are
	// deduplicated by bus event id before sequence checking — a healthy
	// consumer must never conclude an alert fired twice without an
	// intervening resolve.
	alertEvSeen := map[uint64]bool{}
	alertSeq := map[string][]string{} // alert_id -> ordered event types
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		var lastID uint64
		for watchCtx.Err() == nil {
			err := chaosWatchOnce(watchCtx, ts.URL, &lastID, func(ev eventbus.Event) {
				watchMu.Lock()
				defer watchMu.Unlock()
				switch ev.Type {
				case eventbus.TypeRunFinished:
					watchSeen[ev.Data["run_id"]] = true
				case eventbus.TypeAlertFired, eventbus.TypeAlertResolved:
					if alertEvSeen[ev.ID] {
						return // replayed duplicate
					}
					alertEvSeen[ev.ID] = true
					id := ev.Data["alert_id"]
					alertSeq[id] = append(alertSeq[id], ev.Type)
				}
			})
			if err != nil && watchCtx.Err() == nil {
				time.Sleep(10 * time.Millisecond) // reconnect with replay
			}
		}
	}()
	// Events published before the first subscription are live-only (no
	// Last-Event-ID yet, so nothing is replayed): wait for the watcher
	// to attach before generating load, as a real consumer would.
	for start := time.Now(); srv.bus.Subscribers() == 0; {
		if time.Since(start) > 30*time.Second {
			t.Fatal("healthy watcher never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	// A flapping slow subscriber: connects, reads sluggishly, stalls,
	// disconnects, repeats. Its ring (capacity 16) overflows and drops —
	// which must never slow ingest or cost the healthy watcher a thing.
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		for watchCtx.Err() == nil {
			req, err := http.NewRequestWithContext(watchCtx, http.MethodGet, ts.URL+"/v1/watch", nil)
			if err != nil {
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				time.Sleep(20 * time.Millisecond)
				continue
			}
			buf := make([]byte, 256)
			for i := 0; i < 3 && watchCtx.Err() == nil; i++ {
				resp.Body.Read(buf) // a sip...
				select {
				case <-watchCtx.Done():
				case <-time.After(150 * time.Millisecond): // ...then a stall
				}
			}
			resp.Body.Close()
		}
	}()

	// One recurring schedule runs the continuous loop during the soak:
	// its firings share the worker pool and fault schedule with the
	// client submissions.
	var sched struct {
		ID string `json:"id"`
	}
	{
		resp, err := client.Post(ts.URL+"/v1/schedules", "application/json",
			strings.NewReader(`{"benchmark":"babelstream-omp","system":"archer2","every":"300ms"}`))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("schedule create: %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &sched); err != nil {
			t.Fatal(err)
		}
	}

	// A canary alert rule that breaches on every sampler tick: it must
	// fire exactly once during the soak — skipped ticks from obs.sample
	// faults delay it, failed pprof captures must not suppress it, and
	// the healthy watcher must never see a duplicate fire.
	var canary struct {
		ID string `json:"id"`
	}
	{
		resp, err := client.Post(ts.URL+"/v1/alerts", "application/json",
			strings.NewReader(`{"name":"chaos-canary","metric":"benchd_queue_depth","kind":"threshold","op":"gt","value":-1}`))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("alert create: %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &canary); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent submitters; each retries 503s after the server's own
	// Retry-After hint, so injected submit faults and queue-full both
	// resolve to an accepted run or a test failure.
	const clients, runsPerClient = 3, 8
	systems := []string{"archer2", "csd3", "cosma8"}
	var mu sync.Mutex
	var ids []string
	var unavailable int
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < runsPerClient; i++ {
				// Every other submission asks for a 3-repetition protocol
				// (one warm-up), so the core.repetition fault point draws
				// throughout the soak and the perflog invariants below see
				// a mix of single and repeated runs.
				body := fmt.Sprintf(`{"benchmark": "babelstream-omp", "system": %q}`, systems[(c+i)%len(systems)])
				if i%2 == 0 {
					body = fmt.Sprintf(`{"benchmark": "babelstream-omp", "system": %q, "repetitions": 3, "warmup": 1}`,
						systems[(c+i)%len(systems)])
				}
				accepted := false
				for attempt := 0; attempt < 50 && !accepted; attempt++ {
					resp, err := client.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
					if err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusAccepted:
						var v struct {
							ID string `json:"id"`
						}
						if err := json.Unmarshal(data, &v); err != nil {
							t.Errorf("client %d: bad accept body: %v", c, err)
							return
						}
						mu.Lock()
						ids = append(ids, v.ID)
						mu.Unlock()
						accepted = true
					case http.StatusServiceUnavailable:
						if resp.Header.Get("Retry-After") == "" {
							t.Errorf("client %d: 503 without Retry-After", c)
						}
						mu.Lock()
						unavailable++
						mu.Unlock()
						time.Sleep(5 * time.Millisecond)
					default:
						t.Errorf("client %d: status %d: %s", c, resp.StatusCode, data)
						return
					}
				}
				if !accepted {
					t.Errorf("client %d: submission never accepted", c)
					return
				}
			}
		}(c)
	}

	// An out-of-band appender plays the benchctl-invocation role: one-shot
	// perflog.Append calls against the same files the daemon's
	// group-commit writer holds open. These bytes reach the store only by
	// being parsed (the query path's Sync, or a worker's post-commit
	// SyncFile) — which keeps the perfstore.read fault class drawing now
	// that the daemon's own entries enter the store pre-parsed — and they
	// move file offsets underneath the writer, forcing the store to
	// decline stale commit notifications and fall back to parsing. An
	// injected perflog.sync fault fails an append cleanly (nothing
	// lands), so successes are countable exactly.
	oobLanded := 0
	var oobWG sync.WaitGroup
	oobWG.Add(1)
	go func() {
		defer oobWG.Done()
		for i := 0; i < 10; i++ {
			e := &perflog.Entry{
				Time:      time.Now().UTC(),
				Benchmark: "babelstream-omp",
				System:    systems[i%len(systems)],
				Partition: "compute",
				Environ:   "gcc",
				Spec:      "babelstream@4.0%gcc",
				JobID:     100000 + i,
				Result:    "pass",
				FOMs:      map[string]fom.Value{"oob_mbps": {Name: "oob_mbps", Value: 1000 + float64(i), Unit: "MB/s"}},
				Extra:     map[string]string{"source": "benchctl-oob"},
			}
			err := perflog.Append(perflogRoot, e.System, e.Benchmark, e)
			switch {
			case err == nil:
				oobLanded++
				// Query immediately so the tail is parsed while this
				// append is the only unparsed byte range: one parse
				// event (and its perfstore.read draws) per landed
				// append, independent of how slowly the background
				// readers cycle under the race detector.
				if resp, err := client.Get(ts.URL + "/v1/query?benchmark=babelstream-omp"); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			case !faultinject.Is(err):
				t.Errorf("out-of-band append failed for a non-injected reason: %v", err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Concurrent readers keep the query, metrics, and health paths hot
	// while faults fire; anything other than 200 or a well-formed 503
	// fails the suite.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			paths := []string{"/v1/query?benchmark=babelstream-omp", "/metrics", "/healthz", "/v1/runs"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + paths[i%len(paths)])
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("reader: %s -> %d", paths[i%len(paths)], resp.StatusCode)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	oobWG.Wait()
	close(stop)
	readers.Wait()

	// Every accepted run must reach a terminal state.
	deadline := time.Now().Add(120 * time.Second)
	completed, failed := 0, 0
	for _, id := range ids {
		for {
			var v runView
			if code := getJSON(t, ts.URL+"/v1/runs/"+id, &v); code != http.StatusOK {
				t.Fatalf("poll %s: status %d", id, code)
			}
			if v.Status == StatusCompleted {
				completed++
				break
			}
			if v.Status == StatusFailed {
				failed++
				// A failed run must carry a typed injected fault, not an
				// unexplained error.
				if !strings.Contains(v.Error, "faultinject") {
					t.Errorf("run %s failed for a non-injected reason: %s", id, v.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("run %s stuck in %s", id, v.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	t.Logf("chaos seed=%d: %d accepted, %d completed, %d failed, %d transient 503s", seed, len(ids), completed, failed, unavailable)
	if len(ids) != clients*runsPerClient {
		t.Errorf("accepted %d runs, want %d", len(ids), clients*runsPerClient)
	}

	// A fast machine can drain the client load before the schedule's
	// first interval elapses; hold the door until it has fired at least
	// once so the scheduled path is exercised on every soak.
	for {
		var all struct {
			Runs []runView `json:"runs"`
		}
		if code := getJSON(t, ts.URL+"/v1/runs", &all); code != http.StatusOK {
			t.Fatalf("list runs: %d", code)
		}
		if len(all.Runs) > len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recurring schedule never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Retire the recurring schedule (no new firings), then wait for
	// EVERY run — client-submitted and scheduled alike — to go terminal.
	{
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/schedules/"+sched.ID, nil)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("schedule delete: %d", resp.StatusCode)
		}
	}
	completedAll := map[string]bool{}
	scheduled := 0
	for {
		var all struct {
			Runs []runView `json:"runs"`
		}
		if code := getJSON(t, ts.URL+"/v1/runs", &all); code != http.StatusOK {
			t.Fatalf("list runs: %d", code)
		}
		pending := 0
		completedAll = map[string]bool{}
		scheduled = 0
		for _, v := range all.Runs {
			switch v.Status {
			case StatusCompleted:
				completedAll[v.ID] = true
			case StatusFailed:
			default:
				pending++
			}
		}
		scheduled = len(all.Runs) - len(ids)
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d runs still pending at deadline", pending)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if scheduled <= 0 {
		t.Errorf("the recurring schedule fired no runs during the soak")
	}

	// Healthy-watcher invariant: every completed run's run.finished was
	// delivered — the only permissible misses are publishes the bus
	// provably lost to exhausted retries (visible in metrics), never a
	// silent drop caused by the flapping slow subscriber.
	watchDeadline := time.Now().Add(60 * time.Second)
	for {
		exhausted, _ := reg.Value("retry_exhausted_total", "service.publish")
		lost := exhausted - exhaustedBefore
		watchMu.Lock()
		missing := 0
		for id := range completedAll {
			if !watchSeen[id] {
				missing++
			}
		}
		seen := len(watchSeen)
		watchMu.Unlock()
		if float64(missing) <= lost {
			t.Logf("watcher saw %d run.finished events; %d missing, %g publishes exhausted (scheduled runs: %d)",
				seen, missing, lost, scheduled)
			break
		}
		if time.Now().After(watchDeadline) {
			watchMu.Lock()
			var missIDs []string
			for id := range completedAll {
				if !watchSeen[id] {
					missIDs = append(missIDs, id)
				}
			}
			watchMu.Unlock()
			sort.Strings(missIDs)
			t.Fatalf("healthy watcher missing %d run.finished events (%v) but only %g publishes were lost to exhausted retries",
				missing, missIDs, lost)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The canary rule must be firing by the end of the soak — obs.sample
	// faults only skip ticks, they never lose the breach.
	{
		var st struct {
			State string `json:"state"`
			Fires int    `json:"fires"`
		}
		if code := getJSON(t, ts.URL+"/v1/alerts/"+canary.ID, &st); code != http.StatusOK {
			t.Fatalf("canary alert get: %d", code)
		}
		if st.State != "firing" || st.Fires != 1 {
			t.Errorf("canary alert = %+v, want firing with exactly 1 fire", st)
		}
	}
	watchCancel()
	watchWG.Wait()

	// Alert-stream invariant: after deduplicating replays by event id,
	// no alert ever fired twice without an intervening resolve. The
	// canary never recovers, so its deduped sequence is at most one
	// fired event (at most, not exactly: the one publish may be lost to
	// exhausted retries like any other event — counted above, and the
	// rule state check just before is the authoritative fire count).
	watchMu.Lock()
	for id, seq := range alertSeq {
		firing := false
		for _, typ := range seq {
			if typ == eventbus.TypeAlertFired {
				if firing {
					t.Errorf("alert %s fired twice without a resolve: %v", id, seq)
				}
				firing = true
			} else {
				firing = false
			}
		}
	}
	canarySeq := append([]string(nil), alertSeq[canary.ID]...)
	watchMu.Unlock()
	if len(canarySeq) > 1 {
		t.Errorf("canary alert event sequence = %v, want at most one fired", canarySeq)
	}
	t.Logf("canary alert events seen by healthy watcher: %v", canarySeq)

	// Shutdown must drain cleanly while the schedule is still armed.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under faults: %v", err)
	}

	// Invariant: no torn or corrupt perflog lines — ReadTree parses
	// every line or errors.
	entries, err := perflog.ReadTree(perflogRoot)
	if err != nil {
		t.Fatalf("perflog tree corrupt after soak: %v", err)
	}
	// Invariant: exactly one line per completed run — client-submitted
	// and scheduled both — plus one per acknowledged out-of-band append;
	// nothing lost, nothing duplicated, even with perflog.sync faults
	// failing whole commit batches along the way (acked ⇒ durable,
	// faulted ⇒ nothing landed).
	if len(entries) != len(completedAll)+oobLanded {
		t.Errorf("perflog holds %d entries, want %d (%d completed runs + %d out-of-band appends) — lost or duplicated results",
			len(entries), len(completedAll)+oobLanded, len(completedAll), oobLanded)
	}
	// Invariant: no partial repetition sets and no double-counted reps.
	// An entry that declares a repetition protocol carries a complete,
	// decodable stats block for every FOM, with n exactly equal to the
	// declared measured count — a repetition retried after an injected
	// core.repetition fault contributes once, never twice; a set the
	// retries could not complete produced no entry at all.
	repeated := 0
	for _, e := range entries {
		reps, declared := e.Extra["repetitions"]
		foms := e.RepFOMs()
		if !declared {
			if len(foms) != 0 {
				t.Errorf("entry %s/%s job %d: rep stats without a declared protocol", e.System, e.Benchmark, e.JobID)
			}
			continue
		}
		repeated++
		want, err := strconv.Atoi(reps)
		if err != nil {
			t.Errorf("entry %s/%s job %d: bad repetitions extra %q", e.System, e.Benchmark, e.JobID, reps)
			continue
		}
		if len(foms) == 0 {
			t.Errorf("entry %s/%s job %d: declared %d repetitions but has no stats block", e.System, e.Benchmark, e.JobID, want)
		}
		for _, fomName := range foms {
			st, ok := e.RepStats(fomName)
			if !ok {
				t.Errorf("entry %s/%s job %d: partial stats block for %s", e.System, e.Benchmark, e.JobID, fomName)
				continue
			}
			if st.N != want {
				t.Errorf("entry %s/%s job %d: %s has n=%d, protocol declared %d (lost or double-counted repetition)",
					e.System, e.Benchmark, e.JobID, fomName, st.N, want)
			}
			if !(st.CILo <= st.Mean && st.Mean <= st.CIHi) {
				t.Errorf("entry %s/%s job %d: %s CI [%g, %g] does not bracket mean %g",
					e.System, e.Benchmark, e.JobID, fomName, st.CILo, st.CIHi, st.Mean)
			}
		}
	}
	if repeated == 0 {
		t.Error("no repetition-protocol entries survived the soak")
	}

	// Invariant: with faults cleared, both the server's store and a
	// cold-opened one converge to filesystem truth (short reads only
	// ever deferred ingest, never dropped it).
	faultinject.Reset()
	if err := srv.Store().Sync(); err != nil {
		t.Fatalf("post-soak sync: %v", err)
	}
	if got := srv.Store().Len(); got != len(entries) {
		t.Errorf("server store has %d entries, filesystem has %d", got, len(entries))
	}
	fresh := perfstore.Open(perflogRoot)
	if err := fresh.Sync(); err != nil {
		t.Fatalf("cold store sync: %v", err)
	}
	if fresh.Len() != srv.Store().Len() {
		t.Errorf("cold store has %d entries, warm store has %d", fresh.Len(), srv.Store().Len())
	}

	// Invariant: the injected faults and the retries that absorbed them
	// are visible in /metrics — all three required fault classes fired.
	if fired := reg.SumValues("faultinject_fired_total") - firedBefore; fired <= 0 {
		t.Error("no injected faults recorded in faultinject_fired_total")
	}
	if retries := reg.SumValues("retry_retries_total") - retriesBefore; retries <= 0 {
		t.Error("no retries recorded in retry_retries_total")
	}
	for _, pk := range [][2]string{
		{"scheduler.submit", "error"}, {"buildsys.install", "error"}, {"perfstore.read", "short"},
		{"perflog.sync", "error"},
		{"cbsched.tick", "error"}, {"eventbus.publish", "error"},
		{"obs.sample", "error"}, {"obs.profilecapture", "error"},
		{"core.repetition", "error"},
	} {
		v, _ := reg.Value("faultinject_fired_total", pk[0], pk[1])
		if v-classBefore[pk[0]+"|"+pk[1]] <= 0 {
			t.Errorf("fault class %s:%s never fired during the soak", pk[0], pk[1])
		}
	}
	// watchwrite fires probabilistically per stream write; with flapping
	// and reconnecting consumers it is overwhelmingly likely but not
	// guaranteed, so its count is reported rather than asserted.
	if v, _ := reg.Value("faultinject_fired_total", "service.watchwrite", "error"); v > 0 {
		t.Logf("service.watchwrite faults fired: %g", v)
	}

	// Tiered-only invariants: seal the warm store's remaining head (the
	// post-soak sync may have ingested tails the shutdown-time seal
	// predates), then a cold tiered boot must recover the whole store
	// from segment headers without re-parsing a single perflog byte.
	if dataDir != "" {
		if _, err := srv.Store().Seal(); err != nil {
			t.Fatalf("post-soak seal: %v", err)
		}
		cold, err := perfstore.OpenTiered(perflogRoot, dataDir)
		if err != nil {
			t.Fatalf("cold tiered open after soak: %v", err)
		}
		if err := cold.Sync(); err != nil {
			t.Fatalf("cold tiered sync: %v", err)
		}
		st := cold.Stats()
		if st.BytesParsed != 0 {
			t.Errorf("cold tiered boot re-parsed %d perflog bytes, want 0", st.BytesParsed)
		}
		if cold.Len() != srv.Store().Len() {
			t.Errorf("cold tiered store has %d entries, warm store has %d", cold.Len(), srv.Store().Len())
		}
		if v, _ := reg.Value("faultinject_fired_total", "perfstore.segwrite", "error"); v <= 0 {
			t.Error("injected segment-write faults never fired during the tiered soak")
		}
		// No torn metrics-history file: every flush was atomic, so even
		// with every second history write failing (including possibly
		// the final shutdown flush) the on-disk snapshot parses
		// wholesale and carries real samples from some successful flush.
		series, samples, err := obs.LoadHistory(filepath.Join(dataDir, obs.HistoryFile))
		if err != nil {
			t.Fatalf("metrics history torn after soak: %v", err)
		}
		if len(series) == 0 || samples == 0 {
			t.Errorf("metrics history empty after soak: %d series, %d samples", len(series), samples)
		}
		if v, _ := reg.Value("faultinject_fired_total", "obs.historywrite", "error"); v <= 0 {
			t.Error("injected history-write faults never fired during the tiered soak")
		}
	}
}

// chaosWatchOnce runs one /v1/watch connection for the healthy soak
// watcher: subscribe to run.finished and the alert lifecycle (resuming
// from *lastID), feed every event to onEvent, and return when the
// stream breaks — from an injected watchwrite fault, a write deadline,
// or shutdown — so the caller can reconnect and replay.
func chaosWatchOnce(ctx context.Context, base string, lastID *uint64, onEvent func(ev eventbus.Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/watch?types=run.finished,alert.fired,alert.resolved", nil)
	if err != nil {
		return err
	}
	// Always sent — an explicit 0 asks the server to replay everything
	// it retains, so a stream killed before the first event is still
	// recovered on reconnect.
	req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("watch: %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && data != "":
			var ev eventbus.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return err
			}
			data = ""
			if ev.ID > *lastID {
				*lastID = ev.ID
			}
			onEvent(ev)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("stream ended")
}
