package service

// The chaos/soak suite: boot benchd against a seeded fault schedule,
// hammer it with concurrent submitters and readers, and assert the
// system's invariants held — no lost or duplicated results, no torn
// perflog lines, the store converges to filesystem truth, and every
// injected fault was either retried into success or surfaced as a
// typed error. Run under the race detector in CI:
//
//	CHAOS_SEED=42 go test -race -run Chaos -count=2 ./internal/service
//
// The seed fixes every fault decision (see faultinject), so a failure
// reproduces by exporting the same CHAOS_SEED.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/perflog"
	"repro/internal/perfstore"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

// chaosSchedule arms three distinct fault classes in the hot paths —
// transient scheduler rejections, transient build failures, and short
// perfstore reads — plus occasional submission-path faults so clients
// see honest 503s. perflog.sync faults are deliberately absent: a
// sync-failed-but-landed write retried by a client would duplicate a
// line, and that failure mode is covered (unretried) by the perflog
// unit tests instead.
const chaosSchedule = "scheduler.submit:error:rate=0.25," +
	"buildsys.install:error:rate=0.2," +
	"perfstore.read:short:bytes=64:every=7," +
	"service.submit:error:rate=0.15:times=8"

func TestChaosSoak(t *testing.T) { chaosSoak(t, "") }

// TestChaosSoakTiered runs the identical soak against a segment-backed
// store with an aggressive maintenance loop (tiny seal threshold, fast
// ticker, eager compaction) plus injected segment-write failures, so
// seals, compactions, and their retries all happen while the original
// fault schedule is firing.
func TestChaosSoakTiered(t *testing.T) { chaosSoak(t, t.TempDir()) }

func chaosSoak(t *testing.T, dataDir string) {
	seed := int64(42)
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
		}
		seed = n
	}
	dir := t.TempDir()
	perflogRoot := dir + "/perflogs"
	srv, err := New(Config{
		PerflogRoot: perflogRoot,
		InstallTree: dir + "/install",
		Workers:     4,
		QueueDepth:  32,
		DataDir:     dataDir,
		// Aggressive tiering so the soak crosses many seal/compact
		// cycles: seal every 4 head entries, compact at 2 segments,
		// tick the maintenance loop every 10ms.
		SealThreshold:       4,
		CompactSegments:     2,
		MaintenanceInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A fast, shallow retry policy keeps the soak wall-clock short while
	// exercising both outcomes: most injected faults are absorbed by a
	// retry, and a few exhaust their attempts and surface as typed
	// failures.
	srv.Runner().Retry = retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Metric assertions are delta-based so the suite is stable under
	// -count=2 (the registry is process-global).
	reg := telemetry.DefaultRegistry
	firedBefore := reg.SumValues("faultinject_fired_total")
	retriesBefore := reg.SumValues("retry_retries_total")
	classBefore := map[string]float64{}
	for _, pk := range [][2]string{
		{"scheduler.submit", "error"}, {"buildsys.install", "error"}, {"perfstore.read", "short"},
	} {
		v, _ := reg.Value("faultinject_fired_total", pk[0], pk[1])
		classBefore[pk[0]+"|"+pk[1]] = v
	}

	schedule := chaosSchedule
	if dataDir != "" {
		// The first two segment writes fail outright: the maintenance
		// loop must absorb the failed seals and succeed on later ticks.
		schedule += ",perfstore.segwrite:error:times=2"
	}
	loadFaults(t, seed, schedule)

	// Concurrent submitters; each retries 503s after the server's own
	// Retry-After hint, so injected submit faults and queue-full both
	// resolve to an accepted run or a test failure.
	const clients, runsPerClient = 3, 8
	systems := []string{"archer2", "csd3", "cosma8"}
	client := ts.Client()
	var mu sync.Mutex
	var ids []string
	var unavailable int
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < runsPerClient; i++ {
				body := fmt.Sprintf(`{"benchmark": "babelstream-omp", "system": %q}`, systems[(c+i)%len(systems)])
				accepted := false
				for attempt := 0; attempt < 50 && !accepted; attempt++ {
					resp, err := client.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
					if err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusAccepted:
						var v struct {
							ID string `json:"id"`
						}
						if err := json.Unmarshal(data, &v); err != nil {
							t.Errorf("client %d: bad accept body: %v", c, err)
							return
						}
						mu.Lock()
						ids = append(ids, v.ID)
						mu.Unlock()
						accepted = true
					case http.StatusServiceUnavailable:
						if resp.Header.Get("Retry-After") == "" {
							t.Errorf("client %d: 503 without Retry-After", c)
						}
						mu.Lock()
						unavailable++
						mu.Unlock()
						time.Sleep(5 * time.Millisecond)
					default:
						t.Errorf("client %d: status %d: %s", c, resp.StatusCode, data)
						return
					}
				}
				if !accepted {
					t.Errorf("client %d: submission never accepted", c)
					return
				}
			}
		}(c)
	}

	// Concurrent readers keep the query, metrics, and health paths hot
	// while faults fire; anything other than 200 or a well-formed 503
	// fails the suite.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			paths := []string{"/v1/query?benchmark=babelstream-omp", "/metrics", "/healthz", "/v1/runs"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + paths[i%len(paths)])
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("reader: %s -> %d", paths[i%len(paths)], resp.StatusCode)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// Every accepted run must reach a terminal state.
	deadline := time.Now().Add(120 * time.Second)
	completed, failed := 0, 0
	for _, id := range ids {
		for {
			var v runView
			if code := getJSON(t, ts.URL+"/v1/runs/"+id, &v); code != http.StatusOK {
				t.Fatalf("poll %s: status %d", id, code)
			}
			if v.Status == StatusCompleted {
				completed++
				break
			}
			if v.Status == StatusFailed {
				failed++
				// A failed run must carry a typed injected fault, not an
				// unexplained error.
				if !strings.Contains(v.Error, "faultinject") {
					t.Errorf("run %s failed for a non-injected reason: %s", id, v.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("run %s stuck in %s", id, v.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	t.Logf("chaos seed=%d: %d accepted, %d completed, %d failed, %d transient 503s", seed, len(ids), completed, failed, unavailable)
	if len(ids) != clients*runsPerClient {
		t.Errorf("accepted %d runs, want %d", len(ids), clients*runsPerClient)
	}

	// Shutdown must drain cleanly while the schedule is still armed.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under faults: %v", err)
	}

	// Invariant: no torn or corrupt perflog lines — ReadTree parses
	// every line or errors.
	entries, err := perflog.ReadTree(perflogRoot)
	if err != nil {
		t.Fatalf("perflog tree corrupt after soak: %v", err)
	}
	// Invariant: exactly one line per completed run — nothing lost,
	// nothing duplicated.
	if len(entries) != completed {
		t.Errorf("perflog holds %d entries, %d runs completed (lost or duplicated results)", len(entries), completed)
	}

	// Invariant: with faults cleared, both the server's store and a
	// cold-opened one converge to filesystem truth (short reads only
	// ever deferred ingest, never dropped it).
	faultinject.Reset()
	if err := srv.Store().Sync(); err != nil {
		t.Fatalf("post-soak sync: %v", err)
	}
	if got := srv.Store().Len(); got != len(entries) {
		t.Errorf("server store has %d entries, filesystem has %d", got, len(entries))
	}
	fresh := perfstore.Open(perflogRoot)
	if err := fresh.Sync(); err != nil {
		t.Fatalf("cold store sync: %v", err)
	}
	if fresh.Len() != srv.Store().Len() {
		t.Errorf("cold store has %d entries, warm store has %d", fresh.Len(), srv.Store().Len())
	}

	// Invariant: the injected faults and the retries that absorbed them
	// are visible in /metrics — all three required fault classes fired.
	if fired := reg.SumValues("faultinject_fired_total") - firedBefore; fired <= 0 {
		t.Error("no injected faults recorded in faultinject_fired_total")
	}
	if retries := reg.SumValues("retry_retries_total") - retriesBefore; retries <= 0 {
		t.Error("no retries recorded in retry_retries_total")
	}
	for _, pk := range [][2]string{
		{"scheduler.submit", "error"}, {"buildsys.install", "error"}, {"perfstore.read", "short"},
	} {
		v, _ := reg.Value("faultinject_fired_total", pk[0], pk[1])
		if v-classBefore[pk[0]+"|"+pk[1]] <= 0 {
			t.Errorf("fault class %s:%s never fired during the soak", pk[0], pk[1])
		}
	}

	// Tiered-only invariants: seal the warm store's remaining head (the
	// post-soak sync may have ingested tails the shutdown-time seal
	// predates), then a cold tiered boot must recover the whole store
	// from segment headers without re-parsing a single perflog byte.
	if dataDir != "" {
		if _, err := srv.Store().Seal(); err != nil {
			t.Fatalf("post-soak seal: %v", err)
		}
		cold, err := perfstore.OpenTiered(perflogRoot, dataDir)
		if err != nil {
			t.Fatalf("cold tiered open after soak: %v", err)
		}
		if err := cold.Sync(); err != nil {
			t.Fatalf("cold tiered sync: %v", err)
		}
		st := cold.Stats()
		if st.BytesParsed != 0 {
			t.Errorf("cold tiered boot re-parsed %d perflog bytes, want 0", st.BytesParsed)
		}
		if cold.Len() != srv.Store().Len() {
			t.Errorf("cold tiered store has %d entries, warm store has %d", cold.Len(), srv.Store().Len())
		}
		if v, _ := reg.Value("faultinject_fired_total", "perfstore.segwrite", "error"); v <= 0 {
			t.Error("injected segment-write faults never fired during the tiered soak")
		}
	}
}
