package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"repro/internal/buildsys"
	"repro/internal/perflog"
	"repro/internal/perfstore"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

// HTTP-layer metrics: one requests counter per (route, method, code),
// an in-flight gauge, and a per-route latency histogram. Routes are the
// registered patterns, not raw URLs, so cardinality stays bounded.
var (
	metricHTTPRequests = telemetry.DefaultRegistry.Counter(
		"benchd_http_requests_total",
		"HTTP requests served, by route pattern, method, and status code.",
		"route", "method", "code")
	metricHTTPInFlight = telemetry.DefaultRegistry.Gauge(
		"benchd_http_in_flight",
		"HTTP requests currently being served.").With()
	metricHTTPSeconds = telemetry.DefaultRegistry.Histogram(
		"benchd_http_request_seconds",
		"HTTP request latency by route pattern.",
		nil, "route")
	metricGoroutines = telemetry.DefaultRegistry.Gauge(
		"benchd_goroutines",
		"Goroutines alive in the daemon process (sampled at scrape).").With()
)

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.NewResponseController reach the server's writer
// through the instrumentation, so the watch handler can flush and set
// per-write deadlines on a wrapped stream.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with the HTTP metrics, labelled by route.
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		metricHTTPInFlight.Inc()
		defer metricHTTPInFlight.Dec()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		metricHTTPSeconds.With(route).Observe(time.Since(start).Seconds())
		metricHTTPRequests.With(route, r.Method, strconv.Itoa(sw.code)).Inc()
	}
}

// Handler returns the daemon's routed HTTP handler with the request
// timeout applied. Exposed separately from Start so tests can mount it
// on an httptest server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, instrument(route, h))
	}
	handle("POST /v1/runs", "/v1/runs", s.handleSubmit)
	handle("GET /v1/runs", "/v1/runs", s.handleListRuns)
	handle("GET /v1/runs/{id}", "/v1/runs/{id}", s.handleGetRun)
	handle("GET /v1/query", "/v1/query", s.handleQuery)
	handle("GET /v1/regressions", "/v1/regressions", s.handleRegressions)
	handle("GET /v1/traces", "/v1/traces", s.handleListTraces)
	handle("GET /v1/traces/{id}", "/v1/traces/{id}", s.handleGetTrace)
	handle("POST /v1/schedules", "/v1/schedules", s.handleCreateSchedule)
	handle("GET /v1/schedules", "/v1/schedules", s.handleListSchedules)
	handle("GET /v1/schedules/{id}", "/v1/schedules/{id}", s.handleGetSchedule)
	handle("DELETE /v1/schedules/{id}", "/v1/schedules/{id}", s.handleDeleteSchedule)
	handle("POST /v1/alerts", "/v1/alerts", s.handleCreateAlert)
	handle("GET /v1/alerts", "/v1/alerts", s.handleListAlerts)
	handle("GET /v1/alerts/{id}", "/v1/alerts/{id}", s.handleGetAlert)
	handle("DELETE /v1/alerts/{id}", "/v1/alerts/{id}", s.handleDeleteAlert)
	handle("GET /v1/metrics/history", "/v1/metrics/history", s.handleMetricsHistory)
	handle("GET /v1/profiles", "/v1/profiles", s.handleListProfiles)
	handle("GET /v1/profiles/{id}", "/v1/profiles/{id}", s.handleGetProfile)
	handle("GET /healthz", "/healthz", s.handleHealth)
	handle("GET /metrics", "/metrics", s.handleMetrics)
	inner := http.Handler(http.TimeoutHandler(mux, s.cfg.RequestTimeout, `{"error":"request timed out"}`))
	outer := http.NewServeMux()
	// /v1/watch mounts outside the timeout handler: an SSE stream is
	// long-lived by design, and TimeoutHandler would cut it at the API
	// request budget. The handler enforces its own rolling per-write
	// deadline instead.
	outer.HandleFunc("GET /v1/watch", instrument("/v1/watch", s.handleWatch))
	if s.cfg.EnablePprof {
		// pprof also mounts outside the timeout handler: profile captures
		// legitimately run longer than the API request budget
		// (e.g. /debug/pprof/profile?seconds=30).
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	outer.Handle("/", inner)
	return outer
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError emits the daemon's uniform JSON error shape.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeUnavailable reports a transient condition (full queue, store
// wobble, injected fault) as 503 with a Retry-After hint, so
// well-behaved clients back off and retry instead of treating the
// daemon as broken.
func writeUnavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, err)
}

// syncError classifies a store re-sync failure: transient conditions
// (including injected faults) are retryable 503s, anything else is a
// genuine 500.
func syncError(w http.ResponseWriter, err error) {
	if retry.IsTransient(err) {
		writeUnavailable(w, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// runRequest is the POST /v1/runs body.
type runRequest struct {
	Benchmark    string `json:"benchmark"`
	System       string `json:"system"`
	Spec         string `json:"spec,omitempty"`
	NumTasks     int    `json:"num_tasks,omitempty"`
	TasksPerNode int    `json:"tasks_per_node,omitempty"`
	CPUsPerTask  int    `json:"cpus_per_task,omitempty"`
	Repetitions  int    `json:"repetitions,omitempty"`
	Warmup       int    `json:"warmup,omitempty"`
}

// fomView is one figure of merit on the wire.
type fomView struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// entryView is a perflog entry on the wire.
type entryView struct {
	Timestamp time.Time          `json:"timestamp"`
	Benchmark string             `json:"benchmark"`
	System    string             `json:"system"`
	Partition string             `json:"partition"`
	Environ   string             `json:"environ"`
	Spec      string             `json:"spec"`
	Job       int                `json:"job"`
	Result    string             `json:"result"`
	FOMs      map[string]fomView `json:"foms,omitempty"`
	Extra     map[string]string  `json:"extra,omitempty"`
}

func viewEntry(e *perflog.Entry) entryView {
	v := entryView{
		Timestamp: e.Time,
		Benchmark: e.Benchmark,
		System:    e.System,
		Partition: e.Partition,
		Environ:   e.Environ,
		Spec:      e.Spec,
		Job:       e.JobID,
		Result:    e.Result,
		Extra:     e.Extra,
	}
	if len(e.FOMs) > 0 {
		v.FOMs = map[string]fomView{}
		for k, f := range e.FOMs {
			v.FOMs[k] = fomView{Value: f.Value, Unit: f.Unit}
		}
	}
	return v
}

// runView is a run's status on the wire.
type runView struct {
	ID         string     `json:"id"`
	Benchmark  string     `json:"benchmark"`
	System     string     `json:"system"`
	Spec       string     `json:"spec,omitempty"`
	Status     string     `json:"status"`
	Error      string     `json:"error,omitempty"`
	Submitted  time.Time  `json:"submitted_at"`
	Started    *time.Time `json:"started_at,omitempty"`
	Finished   *time.Time `json:"finished_at,omitempty"`
	Entry      *entryView `json:"entry,omitempty"`
	StatusCode int        `json:"-"`
}

func viewRun(r *Run) runView {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := runView{
		ID:        r.ID,
		Benchmark: r.Benchmark,
		System:    r.System,
		Spec:      r.Spec,
		Status:    r.status,
		Error:     r.err,
		Submitted: r.submitted,
	}
	if !r.started.IsZero() {
		t := r.started
		v.Started = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		v.Finished = &t
	}
	if r.entry != nil {
		e := viewEntry(r.entry)
		v.Entry = &e
	}
	return v
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	run, err := s.Submit(SubmitRequest{
		Benchmark:    req.Benchmark,
		System:       req.System,
		Spec:         req.Spec,
		NumTasks:     req.NumTasks,
		TasksPerNode: req.TasksPerNode,
		CPUsPerTask:  req.CPUsPerTask,
		Repetitions:  req.Repetitions,
		Warmup:       req.Warmup,
	})
	var stale *buildsys.StaleBinaryError
	switch {
	case errors.Is(err, errQueueFull), errors.Is(err, errShuttingDown), errors.Is(err, errDegraded):
		writeUnavailable(w, err)
		return
	case errors.As(err, &stale):
		// Pre-flight caught a build manifest whose DAG hash no longer
		// matches the concretized spec: the installed binary is stale.
		// 409 tells the client the tree conflicts with the request —
		// rebuild (or resubmit, which rebuilds) rather than retry as-is.
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":     err.Error(),
			"code":      "stale_binary",
			"package":   stale.Package,
			"prefix":    stale.Prefix,
			"want_hash": stale.WantHash,
			"got_hash":  stale.GotHash,
		})
		return
	case retry.IsTransient(err):
		// An injected or otherwise transient submission failure: the
		// request was well-formed, the daemon just couldn't take it now.
		writeUnavailable(w, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+run.ID)
	writeJSON(w, http.StatusAccepted, viewRun(run))
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such run %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, viewRun(run))
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]runView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, viewRun(s.runs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"runs": views, "count": len(views)})
}

// handleQuery serves GET /v1/query: filtered entries, or group-by
// aggregates when agg= is present. The store re-syncs incrementally
// first so entries appended by out-of-band CLI runs are visible — an
// unchanged tree costs zero parsed bytes.
//
// Aggregate results are served through the generation-stamped cache: a
// repeated dashboard query against an unchanged store costs one map
// lookup (the no-op Sync leaves the generation untouched, so the stamp
// still matches).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := perfstore.ParseQuery(r.URL.RawQuery)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.Sync(); err != nil {
		syncError(w, err)
		return
	}
	if q.Agg != "" {
		// The generation is read before computing: a write racing the
		// aggregation leaves the cached entry stale (next read misses
		// and recomputes) instead of current-but-wrong.
		gen := s.store.Generation()
		key := "aggregate|" + q.Encode()
		if v, ok := s.cache.get(key, gen); ok {
			metricCacheHits.With("aggregate").Inc()
			aggs := v.([]perfstore.Aggregate)
			writeJSON(w, http.StatusOK, map[string]any{"aggregates": aggs, "count": len(aggs)})
			return
		}
		metricCacheMisses.With("aggregate").Inc()
		aggs, err := s.store.Aggregate(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.cache.put(key, gen, aggs)
		writeJSON(w, http.StatusOK, map[string]any{"aggregates": aggs, "count": len(aggs)})
		return
	}
	entries := s.store.Select(q)
	views := make([]entryView, len(entries))
	for i, e := range entries {
		views[i] = viewEntry(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"entries": views, "count": len(views)})
}

// handleRegressions serves GET /v1/regressions: the perfstore sliding
// baseline evaluator over the shared query filters, plus tolerance=
// and window= knobs.
func (s *Server) handleRegressions(w http.ResponseWriter, r *http.Request) {
	values := r.URL.Query()
	tolerance := 0.10
	if v := values.Get("tolerance"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || t < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad tolerance %q", v))
			return
		}
		tolerance = t
	}
	window := 0
	if v := values.Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad window %q", v))
			return
		}
		window = n
	}
	values.Del("tolerance")
	values.Del("window")
	q, err := perfstore.ParseQuery(values.Encode())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if q.FOM == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fom= is required"))
		return
	}
	if err := s.store.Sync(); err != nil {
		syncError(w, err)
		return
	}
	// Regression reports ride the same generation-stamped cache as
	// aggregates; tolerance and window are part of the key because they
	// change the result for identical store contents.
	gen := s.store.Generation()
	key := fmt.Sprintf("regressions|tolerance=%g|window=%d|%s", tolerance, window, q.Encode())
	var reports []perfstore.Report
	if v, ok := s.cache.get(key, gen); ok {
		metricCacheHits.With("regressions").Inc()
		reports = v.([]perfstore.Report)
	} else {
		metricCacheMisses.With("regressions").Inc()
		var err error
		reports, err = s.store.Regressions(q, tolerance, window)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.cache.put(key, gen, reports)
	}
	if reports == nil {
		reports = []perfstore.Report{} // an empty set is [], not null
	}
	flagged, unstable := 0, 0
	for _, r := range reports {
		if r.Flagged {
			flagged++
		}
		if r.Verdict == perfstore.VerdictUnstable {
			unstable++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"regressions": reports,
		"count":       len(reports),
		"flagged":     flagged,
		"unstable":    unstable,
		"tolerance":   tolerance,
		"window":      window,
	})
}

// handleMetrics serves GET /metrics in Prometheus text exposition
// format. Everything registered against telemetry.DefaultRegistry —
// runner stages, buildsys cache hits, perfstore ingest, and the daemon's
// own HTTP/queue families — shows up here.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	metricGoroutines.Set(float64(runtime.NumGoroutine()))
	s.store.PublishMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.DefaultRegistry.WritePrometheus(w)
}

// traceSummary is one retained trace in the /v1/traces listing.
type traceSummary struct {
	ID        string    `json:"id"`
	Name      string    `json:"name"`
	Start     time.Time `json:"start"`
	DurationS float64   `json:"duration_s"`
	Error     string    `json:"error,omitempty"`
	Spans     int       `json:"spans"`
}

func countSpans(v telemetry.SpanView) int {
	n := 1
	for _, c := range v.Children {
		n += countSpans(c)
	}
	return n
}

// handleListTraces serves GET /v1/traces: summaries of the retained run
// traces, newest first.
func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.tracer.Traces()
	views := make([]traceSummary, 0, len(traces))
	for i := len(traces) - 1; i >= 0; i-- {
		t := traces[i]
		v := t.Root.View()
		views = append(views, traceSummary{
			ID:        t.ID,
			Name:      v.Name,
			Start:     v.Start,
			DurationS: v.DurationS,
			Error:     v.Error,
			Spans:     countSpans(v),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": views, "count": len(views)})
}

// handleGetTrace serves GET /v1/traces/{id}: the full span tree of one
// run. Trace ids are run ids, so the id from POST /v1/runs works here
// once the run finishes.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.tracer.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace for %q (traces are kept for finished runs only)", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": t.ID, "root": t.Root.View()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	stats := s.store.Stats()
	s.mu.Lock()
	queued := len(s.queue)
	runs := len(s.runs)
	s.mu.Unlock()
	status := "ok"
	mode := "memory"
	switch {
	case s.degraded:
		status = "degraded"
		mode = "degraded-readonly"
	case s.store.DataDir() != "":
		mode = "tiered"
	}
	schedules, fires, suppressed := s.sched.Counters()
	ostats := s.obs.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       status,
		"uptime_s":     int(time.Since(s.started).Seconds()),
		"entries":      stats.Entries,
		"systems":      stats.Systems,
		"bytes_parsed": stats.BytesParsed,
		"runs_tracked": runs,
		"queued":       queued,
		"query_cache":  s.cache.len(),
		"workers":      s.cfg.Workers,
		"perflog_root": s.store.Root(),
		"scheduler": map[string]any{
			"running":            s.sched.Running(),
			"schedules":          schedules,
			"fires":              fires,
			"overlap_suppressed": suppressed,
			"bus_subscribers":    s.bus.Subscribers(),
			"bus_last_event_id":  s.bus.LastID(),
		},
		"storage": map[string]any{
			"mode":                  mode,
			"data_dir":              s.store.DataDir(),
			"head_entries":          stats.HeadEntries,
			"sealed_entries":        stats.SealedEntries,
			"sealed_segments":       stats.SealedSegments,
			"manifest_generation":   stats.ManifestGeneration,
			"segment_load_failures": stats.SegmentLoadFailures,
		},
		"observability": map[string]any{
			"series":            ostats.Series,
			"samples":           ostats.Samples,
			"sample_interval_s": s.obs.Interval().Seconds(),
			"alert_rules":       ostats.Rules,
			"alerts_firing":     ostats.Firing,
			"profiles":          ostats.Profiles,
		},
	})
}
