package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/perflog"
	"repro/internal/perfstore"
)

// Handler returns the daemon's routed HTTP handler with the request
// timeout applied. Exposed separately from Start so tests can mount it
// on an httptest server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/regressions", s.handleRegressions)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return http.TimeoutHandler(mux, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError emits the daemon's uniform JSON error shape.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// runRequest is the POST /v1/runs body.
type runRequest struct {
	Benchmark    string `json:"benchmark"`
	System       string `json:"system"`
	Spec         string `json:"spec,omitempty"`
	NumTasks     int    `json:"num_tasks,omitempty"`
	TasksPerNode int    `json:"tasks_per_node,omitempty"`
	CPUsPerTask  int    `json:"cpus_per_task,omitempty"`
}

// fomView is one figure of merit on the wire.
type fomView struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// entryView is a perflog entry on the wire.
type entryView struct {
	Timestamp time.Time          `json:"timestamp"`
	Benchmark string             `json:"benchmark"`
	System    string             `json:"system"`
	Partition string             `json:"partition"`
	Environ   string             `json:"environ"`
	Spec      string             `json:"spec"`
	Job       int                `json:"job"`
	Result    string             `json:"result"`
	FOMs      map[string]fomView `json:"foms,omitempty"`
	Extra     map[string]string  `json:"extra,omitempty"`
}

func viewEntry(e *perflog.Entry) entryView {
	v := entryView{
		Timestamp: e.Time,
		Benchmark: e.Benchmark,
		System:    e.System,
		Partition: e.Partition,
		Environ:   e.Environ,
		Spec:      e.Spec,
		Job:       e.JobID,
		Result:    e.Result,
		Extra:     e.Extra,
	}
	if len(e.FOMs) > 0 {
		v.FOMs = map[string]fomView{}
		for k, f := range e.FOMs {
			v.FOMs[k] = fomView{Value: f.Value, Unit: f.Unit}
		}
	}
	return v
}

// runView is a run's status on the wire.
type runView struct {
	ID         string     `json:"id"`
	Benchmark  string     `json:"benchmark"`
	System     string     `json:"system"`
	Spec       string     `json:"spec,omitempty"`
	Status     string     `json:"status"`
	Error      string     `json:"error,omitempty"`
	Submitted  time.Time  `json:"submitted_at"`
	Started    *time.Time `json:"started_at,omitempty"`
	Finished   *time.Time `json:"finished_at,omitempty"`
	Entry      *entryView `json:"entry,omitempty"`
	StatusCode int        `json:"-"`
}

func viewRun(r *Run) runView {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := runView{
		ID:        r.ID,
		Benchmark: r.Benchmark,
		System:    r.System,
		Spec:      r.Spec,
		Status:    r.status,
		Error:     r.err,
		Submitted: r.submitted,
	}
	if !r.started.IsZero() {
		t := r.started
		v.Started = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		v.Finished = &t
	}
	if r.entry != nil {
		e := viewEntry(r.entry)
		v.Entry = &e
	}
	return v
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	run, err := s.Submit(req.Benchmark, req.System, req.Spec, req.NumTasks, req.TasksPerNode, req.CPUsPerTask)
	switch {
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, errShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+run.ID)
	writeJSON(w, http.StatusAccepted, viewRun(run))
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such run %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, viewRun(run))
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]runView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, viewRun(s.runs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"runs": views, "count": len(views)})
}

// handleQuery serves GET /v1/query: filtered entries, or group-by
// aggregates when agg= is present. The store re-syncs incrementally
// first so entries appended by out-of-band CLI runs are visible — an
// unchanged tree costs zero parsed bytes.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := perfstore.ParseQuery(r.URL.RawQuery)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.Sync(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if q.Agg != "" {
		aggs, err := s.store.Aggregate(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"aggregates": aggs, "count": len(aggs)})
		return
	}
	entries := s.store.Select(q)
	views := make([]entryView, len(entries))
	for i, e := range entries {
		views[i] = viewEntry(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"entries": views, "count": len(views)})
}

// handleRegressions serves GET /v1/regressions: the perfstore sliding
// baseline evaluator over the shared query filters, plus tolerance=
// and window= knobs.
func (s *Server) handleRegressions(w http.ResponseWriter, r *http.Request) {
	values := r.URL.Query()
	tolerance := 0.10
	if v := values.Get("tolerance"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || t < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad tolerance %q", v))
			return
		}
		tolerance = t
	}
	window := 0
	if v := values.Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad window %q", v))
			return
		}
		window = n
	}
	values.Del("tolerance")
	values.Del("window")
	q, err := perfstore.ParseQuery(values.Encode())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if q.FOM == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fom= is required"))
		return
	}
	if err := s.store.Sync(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	reports, err := s.store.Regressions(q, tolerance, window)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if reports == nil {
		reports = []perfstore.Report{} // an empty set is [], not null
	}
	flagged := 0
	for _, r := range reports {
		if r.Flagged {
			flagged++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"regressions": reports,
		"count":       len(reports),
		"flagged":     flagged,
		"tolerance":   tolerance,
		"window":      window,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	stats := s.store.Stats()
	s.mu.Lock()
	queued := len(s.queue)
	runs := len(s.runs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"uptime_s":     int(time.Since(s.started).Seconds()),
		"entries":      stats.Entries,
		"systems":      stats.Systems,
		"bytes_parsed": stats.BytesParsed,
		"runs_tracked": runs,
		"queued":       queued,
		"workers":      s.cfg.Workers,
		"perflog_root": s.store.Root(),
	})
}
