package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/eventbus"
	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

var (
	metricWatchStreams = telemetry.DefaultRegistry.Gauge(
		"benchd_watch_streams",
		"Live /v1/watch SSE streams.").With()
	metricWatchEvents = telemetry.DefaultRegistry.Counter(
		"benchd_watch_events_total",
		"Events written to /v1/watch streams, by delivery (live, replay).",
		"delivery")
)

// handleWatch serves GET /v1/watch: the event bus as a Server-Sent
// Events stream. It is mounted outside the request-timeout handler —
// a watch stream is long-lived by design — and writes under a rolling
// per-write deadline instead, so one wedged client connection is
// reclaimed after ~two heartbeat intervals rather than holding a
// goroutine forever.
//
//	?types=run.finished,regression.detected   comma-separated filter
//	Last-Event-ID: 42                         replay after reconnect
//
// Wire shape per event:
//
//	id: 43
//	event: run.finished
//	data: {"id":43,"type":"run.finished","time":...,"data":{...}}
//
// Heartbeat comments (": heartbeat") flow while the bus is quiet so
// proxies and clients can tell a silent stream from a dead one. When
// the subscriber's ring overflowed (a slow consumer), the hole is
// refilled from the bus's replay ring before anything newer is sent;
// only a hole the replay ring has also evicted is reported, as a
// ": dropped" comment. On graceful shutdown every stream receives a
// terminal server.shutdown event and ends cleanly.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	// ResponseController reaches the real connection through the
	// instrumentation wrapper (statusWriter.Unwrap) for Flush and
	// per-write deadlines.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	var types []string
	if raw := r.URL.Query().Get("types"); raw != "" {
		known := map[string]bool{}
		for _, t := range eventbus.Types() {
			known[t] = true
		}
		for _, t := range strings.Split(raw, ",") {
			t = strings.TrimSpace(t)
			if t == "" {
				continue
			}
			if !known[t] {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("unknown event type %q (types: %s)", t, strings.Join(eventbus.Types(), ", ")))
				return
			}
			types = append(types, t)
		}
		// A shutdown must be able to terminate every stream, so the
		// terminal type is always subscribed even under a filter.
		types = append(types, eventbus.TypeServerShutdown)
	}
	// A present Last-Event-ID header requests catch-up from that cursor;
	// an explicit 0 means "I have seen nothing — replay everything the
	// ring retains". No header means a live tail from now.
	var lastID uint64
	replayRequested := false
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		id, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad Last-Event-ID %q", raw))
			return
		}
		lastID = id
		replayRequested = true
	}

	// Subscribe before replaying: events published during the replay
	// land in the ring and are deduplicated below by ID, so the client
	// sees a gapless, strictly-increasing stream.
	sub, err := s.bus.Subscribe(types, s.cfg.EventBuffer)
	if err != nil {
		writeUnavailable(w, fmt.Errorf("watch unavailable: %w", err))
		return
	}
	defer sub.Close()
	metricWatchStreams.Inc()
	defer metricWatchStreams.Dec()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	writeDeadline := 2 * s.cfg.HeartbeatInterval
	writeEvent := func(ev eventbus.Event, delivery string) error {
		// The "service.watchwrite" injection point models the stream
		// write failing (a broken pipe, a wedged proxy): the stream ends
		// and the client reconnects with Last-Event-ID.
		if err := faultinject.Fire("service.watchwrite"); err != nil {
			return err
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		rc.SetWriteDeadline(time.Now().Add(writeDeadline))
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, data); err != nil {
			return err
		}
		if err := rc.Flush(); err != nil {
			return err
		}
		metricWatchEvents.With(delivery).Inc()
		return nil
	}
	comment := func(text string) error {
		rc.SetWriteDeadline(time.Now().Add(writeDeadline))
		if _, err := fmt.Fprintf(w, ": %s\n\n", text); err != nil {
			return err
		}
		return rc.Flush()
	}

	if replayRequested {
		replay, gap := s.bus.ReplaySince(lastID, types)
		if gap {
			// The ring no longer reaches back that far; tell the client
			// its view has a hole instead of silently skipping it.
			if err := comment("replay gap: events before this point were evicted"); err != nil {
				return
			}
		}
		for _, ev := range replay {
			if err := writeEvent(ev, "replay"); err != nil {
				return
			}
			lastID = ev.ID
		}
	} else if err := comment("watching"); err != nil {
		return
	}

	// When the subscriber's own ring overflowed under a publish burst,
	// the hole is usually still covered by the bus's (much larger)
	// replay ring: refill from there before writing anything newer, so
	// the stream stays gapless and the client's Last-Event-ID never
	// skips past events it did not see. Only a hole the replay ring has
	// also evicted is a real loss, and that one is disclosed.
	var droppedSeen uint64
	recoverDropped := func() error {
		d := sub.Dropped()
		if d <= droppedSeen {
			return nil
		}
		droppedSeen = d
		replay, gap := s.bus.ReplaySince(lastID, types)
		if gap {
			if err := comment("dropped (slow consumer): events before this point were evicted"); err != nil {
				return err
			}
		}
		for _, ev := range replay {
			if ev.ID <= lastID {
				continue
			}
			if err := writeEvent(ev, "replay"); err != nil {
				return err
			}
			lastID = ev.ID
		}
		return nil
	}
	for {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.HeartbeatInterval)
		ev, err := sub.Next(ctx)
		cancel()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			if err := recoverDropped(); err != nil {
				return
			}
			if err := comment("heartbeat"); err != nil {
				return
			}
			continue
		case err != nil:
			// Bus closed (shutdown already delivered the terminal event
			// through the ring) or the client went away.
			return
		}
		if err := recoverDropped(); err != nil {
			return
		}
		if ev.ID <= lastID {
			continue // already sent during replay or drop recovery
		}
		lastID = ev.ID
		if err := writeEvent(ev, "live"); err != nil {
			return
		}
		if ev.Type == eventbus.TypeServerShutdown {
			return
		}
	}
}
