package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cbsched"
	"repro/internal/concretize"
	"repro/internal/spec"
	"repro/internal/suite"
)

// schedulesFile is the schedule registry's on-disk name under
// Config.DataDir. Like the segment MANIFEST, it is replaced atomically
// (tmp + fsync + rename) so a crash mid-save leaves the previous
// registry intact and registered schedules always survive a reboot.
const schedulesFile = "schedules.json"

// scheduleRequest is the POST /v1/schedules body. Every is a Go
// duration string ("30s", "5m").
type scheduleRequest struct {
	Name          string `json:"name,omitempty"`
	Benchmark     string `json:"benchmark"`
	System        string `json:"system"`
	Spec          string `json:"spec,omitempty"`
	NumTasks      int    `json:"num_tasks,omitempty"`
	TasksPerNode  int    `json:"tasks_per_node,omitempty"`
	CPUsPerTask   int    `json:"cpus_per_task,omitempty"`
	Every         string `json:"every,omitempty"`
	OnBuildChange bool   `json:"on_build_change,omitempty"`
}

// startScheduled is the cbsched Start callback: it submits through the
// same bounded worker pool as POST /v1/runs, so scheduled work and
// client work share one backpressure story. The schedule id rides on
// the run so completion flows back into the scheduler's state.
func (s *Server) startScheduled(sp cbsched.Spec) (string, error) {
	run, err := s.submit(SubmitRequest{
		Benchmark:    sp.Benchmark,
		System:       sp.System,
		Spec:         sp.BuildSpec,
		NumTasks:     sp.NumTasks,
		TasksPerNode: sp.TasksPerNode,
		CPUsPerTask:  sp.CPUsPerTask,
	}, sp.ID)
	if err != nil {
		return "", err
	}
	return run.ID, nil
}

// scheduleBuildHash is the cbsched Hash callback: resolve + concretize
// (no build, no run) to the DAG hash the benchmark would install with
// right now. This is the on-build-change trigger's probe — it matches
// the build_hash provenance the runner records in every perflog entry,
// so "fire when the hash differs from the last run's manifest hash" is
// an exact comparison, not a heuristic.
func (s *Server) scheduleBuildHash(sp cbsched.Spec) (string, error) {
	b, err := suite.ByName(sp.Benchmark)
	if err != nil {
		return "", err
	}
	sys, part, err := s.runner.Estate.Resolve(sp.System)
	if err != nil {
		return "", err
	}
	specText := b.BuildSpec()
	if sp.BuildSpec != "" {
		specText = sp.BuildSpec
	}
	abstract, err := spec.Parse(specText)
	if err != nil {
		return "", err
	}
	cfg := s.runner.Envs.ForSystem(sys.Name)
	conc, err := concretize.Concretize(abstract, cfg.ConcretizeOptions(s.runner.Repo, string(part.Processor.Arch)))
	if err != nil {
		return "", err
	}
	return conc.Spec.DAGHash(), nil
}

// schedulesPath returns the registry file path, or "" when the daemon
// has no data dir (schedules are then in-memory only and die with the
// process).
func (s *Server) schedulesPath() string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, schedulesFile)
}

// loadSchedules restores the persisted registry at boot. A missing
// file is an empty registry; a corrupt one is surfaced (the operator
// should decide, not lose schedules silently).
func (s *Server) loadSchedules() error {
	path := s.schedulesPath()
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: schedules: %w", err)
	}
	var persisted []cbsched.Persisted
	if err := json.Unmarshal(data, &persisted); err != nil {
		return fmt.Errorf("service: schedules: parse %s: %w", path, err)
	}
	s.sched.Restore(persisted)
	if n := len(persisted); n > 0 {
		s.cfg.Logger.Info("schedules restored", "count", n, "path", path)
	}
	return nil
}

// saveSchedules atomically replaces the registry file with the
// scheduler's current snapshot. Serialized by persistMu so concurrent
// CRUD calls cannot interleave their tmp files.
func (s *Server) saveSchedules() error {
	path := s.schedulesPath()
	if path == "" {
		return nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	data, err := json.MarshalIndent(s.sched.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("service: schedules: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("service: schedules: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("service: schedules: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("service: schedules: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("service: schedules: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("service: schedules: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// persistSchedules saves and logs rather than failing the caller: a
// full disk must not take down the tick loop or a DELETE, but it must
// be visible.
func (s *Server) persistSchedules() {
	if err := s.saveSchedules(); err != nil {
		s.cfg.Logger.Error("schedule persistence failed", "error", err.Error())
	}
}

// validateScheduleTarget applies the same benchmark/system/spec checks
// a direct run submission gets, so a schedule can only be registered
// for work the daemon could actually execute.
func (s *Server) validateScheduleTarget(req *scheduleRequest) error {
	if req.Benchmark == "" || req.System == "" {
		return fmt.Errorf("benchmark and system are required")
	}
	if _, err := suite.ByName(req.Benchmark); err != nil {
		return err
	}
	if _, _, err := s.runner.Estate.Resolve(req.System); err != nil {
		return err
	}
	if req.Spec != "" {
		norm, err := suite.NormalizeModelSpec(req.Spec)
		if err != nil {
			return err
		}
		req.Spec = norm
	}
	if req.NumTasks < 0 || req.TasksPerNode < 0 || req.CPUsPerTask < 0 {
		return fmt.Errorf("layout overrides must be non-negative")
	}
	return nil
}

func (s *Server) handleCreateSchedule(w http.ResponseWriter, r *http.Request) {
	if s.degraded {
		// Read-only daemon: registering work that can never execute
		// would just accumulate failure streaks.
		writeUnavailable(w, errDegraded)
		return
	}
	var req scheduleRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if err := s.validateScheduleTarget(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sp := cbsched.Spec{
		Name:          req.Name,
		Benchmark:     req.Benchmark,
		System:        req.System,
		BuildSpec:     req.Spec,
		NumTasks:      req.NumTasks,
		TasksPerNode:  req.TasksPerNode,
		CPUsPerTask:   req.CPUsPerTask,
		OnBuildChange: req.OnBuildChange,
	}
	if req.Every != "" {
		d, err := time.ParseDuration(req.Every)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad every %q: %w", req.Every, err))
			return
		}
		sp.Every = cbsched.Duration(d)
	}
	st, err := s.sched.Add(sp)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.persistSchedules()
	w.Header().Set("Location", "/v1/schedules/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleListSchedules(w http.ResponseWriter, r *http.Request) {
	list := s.sched.List()
	writeJSON(w, http.StatusOK, map[string]any{"schedules": list, "count": len(list)})
}

func (s *Server) handleGetSchedule(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such schedule %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDeleteSchedule(w http.ResponseWriter, r *http.Request) {
	if !s.sched.Remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such schedule %q", r.PathValue("id")))
		return
	}
	s.persistSchedules()
	w.WriteHeader(http.StatusNoContent)
}
