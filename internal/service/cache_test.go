package service

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/fom"
	"repro/internal/perflog"
	"repro/internal/perfstore"
	"repro/internal/telemetry"
)

func TestQueryCacheGenerationAndLRU(t *testing.T) {
	c := newQueryCache(2)
	c.put("a", 1, "va")
	if v, ok := c.get("a", 1); !ok || v != "va" {
		t.Fatalf("get(a) = %v, %v", v, ok)
	}
	// A generation bump invalidates without any explicit flush.
	if _, ok := c.get("a", 2); ok {
		t.Fatal("stale generation served")
	}
	if c.len() != 0 {
		t.Fatalf("stale entry retained: len = %d", c.len())
	}
	// LRU bound: touching "a" keeps it; "b" is the victim.
	c.put("a", 3, "va")
	c.put("b", 3, "vb")
	if _, ok := c.get("a", 3); !ok {
		t.Fatal("a missing")
	}
	c.put("c", 3, "vc")
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("b", 3); ok {
		t.Fatal("LRU victim b survived")
	}
	if _, ok := c.get("a", 3); !ok {
		t.Fatal("recently used a evicted")
	}
	// put on an existing key refreshes value and stamp in place.
	c.put("a", 4, "va2")
	if v, ok := c.get("a", 4); !ok || v != "va2" {
		t.Fatalf("refresh lost: %v, %v", v, ok)
	}
}

// cacheEntryFor builds a minimal passing perflog entry with one l0 FOM,
// timestamped by job so orderings are deterministic.
func cacheEntryFor(system, benchmark string, job int, val float64) *perflog.Entry {
	return &perflog.Entry{
		Time:      time.Date(2023, 7, 7, 10, 0, 0, 0, time.UTC).Add(time.Duration(job) * time.Minute),
		Benchmark: benchmark,
		System:    system,
		Partition: "compute",
		Environ:   "gcc",
		Spec:      benchmark + "%gcc",
		JobID:     job,
		Result:    "pass",
		FOMs:      map[string]fom.Value{"l0": {Name: "l0", Value: val, Unit: "MDOF/s"}},
		Extra:     map[string]string{"num_tasks": "8"},
	}
}

// TestAggregateCacheEndToEnd drives /v1/query?agg= through the handler
// twice, checks the second hit is served from cache (hit counter
// moves), then appends an entry and checks the cache does not serve the
// stale aggregate.
func TestAggregateCacheEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{PerflogRoot: dir + "/perflogs", InstallTree: dir + "/install", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	store := srv.Store()
	if err := store.Append("archer2", "hpgmg-fv", cacheEntryFor("archer2", "hpgmg-fv", 1, 95.0)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	count := func() int {
		var body struct {
			Aggregates []perfstore.Aggregate `json:"aggregates"`
		}
		if code := getJSON(t, ts.URL+"/v1/query?fom=l0&agg=mean&group_by=system", &body); code != 200 {
			t.Fatalf("query status = %d", code)
		}
		if len(body.Aggregates) != 1 {
			t.Fatalf("aggregates = %+v", body.Aggregates)
		}
		return body.Aggregates[0].Count
	}

	hits := func() float64 {
		v, _ := telemetry.DefaultRegistry.Value("benchd_query_cache_hits_total", "aggregate")
		return v
	}

	h0 := hits()
	if got := count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if hits() != h0+1 {
		t.Fatalf("second identical query missed the cache (hits %v -> %v)", h0, hits())
	}
	// A store write must invalidate: the next query sees the new entry.
	if err := store.Append("archer2", "hpgmg-fv", cacheEntryFor("archer2", "hpgmg-fv", 2, 94.0)); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 2 {
		t.Fatalf("stale aggregate served after write: count = %d, want 2", got)
	}
}
