package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fom"
	"repro/internal/perflog"
	"repro/internal/telemetry"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	srv, err := New(Config{
		PerflogRoot:    dir + "/perflogs",
		InstallTree:    dir + "/install",
		Workers:        2,
		QueueDepth:     8,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

// TestE2ERunQueryRegress is the acceptance path: submit a BabelStream
// run, poll it to completion, read its Triad FOM back through
// /v1/query, and get a well-formed /v1/regressions response.
func TestE2ERunQueryRegress(t *testing.T) {
	_, ts := newTestServer(t)

	var submitted runView
	code := postJSON(t, ts.URL+"/v1/runs",
		`{"benchmark":"babelstream-omp","system":"archer2"}`, &submitted)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if submitted.ID == "" || submitted.Status != StatusQueued {
		t.Fatalf("submitted = %+v", submitted)
	}

	// Poll to completion.
	var final runView
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("run %s did not finish: %+v", submitted.ID, final)
		}
		if code := getJSON(t, ts.URL+"/v1/runs/"+submitted.ID, &final); code != http.StatusOK {
			t.Fatalf("poll status = %d", code)
		}
		if final.Status == StatusCompleted || final.Status == StatusFailed {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if final.Status != StatusCompleted {
		t.Fatalf("run failed: %+v", final)
	}
	if final.Entry == nil || final.Entry.Result != "pass" {
		t.Fatalf("entry = %+v", final.Entry)
	}
	if final.Entry.FOMs["triad_mbps"].Value <= 0 {
		t.Fatalf("triad FOM = %+v", final.Entry.FOMs)
	}

	// The FOM is queryable from the store.
	var q struct {
		Entries []entryView `json:"entries"`
		Count   int         `json:"count"`
	}
	url := ts.URL + "/v1/query?benchmark=babelstream-omp&system=archer2&fom=triad_mbps&result=pass"
	if code := getJSON(t, url, &q); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if q.Count != 1 || q.Entries[0].FOMs["triad_mbps"].Value != final.Entry.FOMs["triad_mbps"].Value {
		t.Fatalf("query = %+v", q)
	}

	// Aggregates over the same data.
	var aggs struct {
		Aggregates []struct {
			Group string  `json:"group"`
			Count int     `json:"count"`
			Mean  float64 `json:"mean"`
		} `json:"aggregates"`
	}
	url = ts.URL + "/v1/query?fom=triad_mbps&agg=mean&group_by=system,benchmark"
	if code := getJSON(t, url, &aggs); code != http.StatusOK {
		t.Fatalf("agg status = %d", code)
	}
	if len(aggs.Aggregates) != 1 || aggs.Aggregates[0].Group != "archer2/babelstream-omp" || aggs.Aggregates[0].Mean <= 0 {
		t.Fatalf("aggregates = %+v", aggs)
	}

	// A well-formed regressions response (one run: nothing to judge yet,
	// but the shape and knobs are there).
	var reg struct {
		Regressions []json.RawMessage `json:"regressions"`
		Count       int               `json:"count"`
		Flagged     int               `json:"flagged"`
		Tolerance   float64           `json:"tolerance"`
		Window      int               `json:"window"`
	}
	url = ts.URL + "/v1/regressions?fom=triad_mbps&tolerance=0.15&window=5"
	if code := getJSON(t, url, &reg); code != http.StatusOK {
		t.Fatalf("regressions status = %d", code)
	}
	if reg.Tolerance != 0.15 || reg.Window != 5 || reg.Flagged != 0 {
		t.Fatalf("regressions = %+v", reg)
	}

	// The run also shows up in the listing and in health.
	var list struct {
		Count int `json:"count"`
	}
	if code := getJSON(t, ts.URL+"/v1/runs", &list); code != http.StatusOK || list.Count != 1 {
		t.Fatalf("list = %+v (%d)", list, code)
	}
	var health struct {
		Status  string `json:"status"`
		Entries int    `json:"entries"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("health status = %d", code)
	}
	if health.Status != "ok" || health.Entries != 1 {
		t.Fatalf("health = %+v", health)
	}
}

func TestRegressionsFlagsDropAcrossDaemonAndCLIEntries(t *testing.T) {
	// Entries written to the tree by out-of-band CLI runs are visible to
	// the daemon's query path after its incremental re-sync, and a drop
	// is flagged with the shared tolerance rule.
	srv, ts := newTestServer(t)
	t0 := time.Date(2023, 7, 7, 10, 0, 0, 0, time.UTC)
	for i, v := range []float64{100, 101, 80} {
		e := &perflog.Entry{
			Time: t0.Add(time.Duration(i) * time.Hour), Benchmark: "hpgmg-fv",
			System: "archer2", Partition: "compute", Environ: "gcc",
			Spec: "hpgmg%gcc", JobID: i + 1, Result: "pass",
			FOMs:  map[string]fom.Value{"l0": {Name: "l0", Value: v, Unit: "MDOF/s"}},
			Extra: map[string]string{},
		}
		if err := perflog.Append(srv.Store().Root(), "archer2", "hpgmg-fv", e); err != nil {
			t.Fatal(err)
		}
	}
	var reg struct {
		Regressions []struct {
			Group   string `json:"group"`
			Flagged bool   `json:"flagged"`
		} `json:"regressions"`
		Flagged int `json:"flagged"`
	}
	if code := getJSON(t, ts.URL+"/v1/regressions?fom=l0", &reg); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if reg.Flagged != 1 || len(reg.Regressions) != 1 || !reg.Regressions[0].Flagged {
		t.Fatalf("regressions = %+v", reg)
	}
	if reg.Regressions[0].Group != "archer2/hpgmg-fv" {
		t.Errorf("group = %q", reg.Regressions[0].Group)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"bad json", `{"benchmark": `},
		{"unknown field", `{"benchmark":"babelstream-omp","system":"archer2","nope":1}`},
		{"missing fields", `{}`},
		{"unknown benchmark", `{"benchmark":"linpack","system":"archer2"}`},
		{"unknown system", `{"benchmark":"babelstream-omp","system":"summit"}`},
		{"bad spec", `{"benchmark":"babelstream-omp","system":"archer2","spec":"@bad"}`},
		{"negative num_tasks", `{"benchmark":"babelstream-omp","system":"archer2","num_tasks":-4}`},
		{"negative tasks_per_node", `{"benchmark":"babelstream-omp","system":"archer2","tasks_per_node":-1}`},
		{"negative cpus_per_task", `{"benchmark":"babelstream-omp","system":"archer2","cpus_per_task":-8}`},
	}
	for _, tc := range cases {
		var e struct {
			Error string `json:"error"`
		}
		if code := postJSON(t, ts.URL+"/v1/runs", tc.body, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d", tc.name, code)
		}
		if e.Error == "" {
			t.Errorf("%s: no JSON error body", tc.name)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{
		"?bogus=1",
		"?limit=-1",
		"?since=yesterday",
		"?agg=mean", // needs fom
		"?agg=median&fom=x",
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := getJSON(t, ts.URL+"/v1/query"+q, &e); code != http.StatusBadRequest {
			t.Errorf("query %q: status = %d", q, code)
		}
		if e.Error == "" {
			t.Errorf("query %q: no JSON error body", q)
		}
	}
	for _, q := range []string{
		"", // fom required
		"?fom=l0&tolerance=abc",
		"?fom=l0&window=-2",
	} {
		if code := getJSON(t, ts.URL+"/v1/regressions"+q, nil); code != http.StatusBadRequest {
			t.Errorf("regressions %q: status = %d", q, code)
		}
	}
}

func TestUnknownRunIs404(t *testing.T) {
	_, ts := newTestServer(t)
	var e struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, ts.URL+"/v1/runs/run-999999", &e); code != http.StatusNotFound {
		t.Errorf("status = %d", code)
	}
	if !strings.Contains(e.Error, "run-999999") {
		t.Errorf("error = %q", e.Error)
	}
}

func TestQueueFullRejectsWith503(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{
		PerflogRoot: dir + "/perflogs",
		InstallTree: dir + "/install",
		Workers:     1,
		QueueDepth:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	// Fill the queue faster than one worker drains it. Some submissions
	// must be rejected with the queue-full error; none may block.
	var rejected int
	for i := 0; i < 20; i++ {
		_, err := srv.Submit(SubmitRequest{Benchmark: "babelstream-omp", System: "archer2"})
		if err != nil {
			if !strings.Contains(err.Error(), "queue is full") {
				t.Fatalf("unexpected error: %v", err)
			}
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("20 rapid submissions on a depth-1 queue never hit queue-full")
	}
}

func TestShutdownDrainsQueuedRuns(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{
		PerflogRoot: dir + "/perflogs",
		InstallTree: dir + "/install",
		Workers:     1,
		QueueDepth:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		run, err := srv.Submit(SubmitRequest{Benchmark: "babelstream-omp", System: "archer2"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, run.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Every accepted run executed before shutdown returned.
	for _, id := range ids {
		run, ok := srv.Get(id)
		if !ok {
			t.Fatalf("run %s lost", id)
		}
		if v := viewRun(run); v.Status != StatusCompleted {
			t.Errorf("run %s = %+v", id, v)
		}
	}
	// And submissions after shutdown are refused.
	if _, err := srv.Submit(SubmitRequest{Benchmark: "babelstream-omp", System: "archer2"}); err == nil {
		t.Error("submit after shutdown accepted")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewBufferString("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/query status = %d", resp.StatusCode)
	}
}

func TestHealthzShape(t *testing.T) {
	_, ts := newTestServer(t)
	var h map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, key := range []string{"status", "entries", "systems", "queued", "workers", "perflog_root"} {
		if _, ok := h[key]; !ok {
			t.Errorf("healthz missing %q: %v", key, h)
		}
	}
}

func TestFailedRunIsReported(t *testing.T) {
	// Spec syntax is validated at submit, but concretization happens in
	// the pipeline: an unknown package passes Submit and must surface as
	// a failed run with its error, not vanish.
	srv, err := New(Config{
		PerflogRoot: t.TempDir() + "/perflogs",
		InstallTree: t.TempDir() + "/install",
		Workers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	run, err := srv.Submit(SubmitRequest{Benchmark: "babelstream-omp", System: "archer2", Spec: "no-such-package"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		v := viewRun(run)
		if v.Status == StatusFailed {
			if v.Error == "" {
				t.Error("failed run carries no error")
			}
			break
		}
		if v.Status == StatusCompleted {
			t.Fatalf("expected failure, got %+v", v)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run stuck: %+v", v)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// submitAndWait pushes one run through the HTTP API and polls it to a
// terminal status.
func submitAndWait(t *testing.T, ts *httptest.Server, body string) runView {
	t.Helper()
	var submitted runView
	if code := postJSON(t, ts.URL+"/v1/runs", body, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v runView
		if code := getJSON(t, ts.URL+"/v1/runs/"+submitted.ID, &v); code != http.StatusOK {
			t.Fatalf("poll status = %d", code)
		}
		if v.Status == StatusCompleted || v.Status == StatusFailed {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck: %+v", submitted.ID, v)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// sampleValue finds the exposition line for one series and returns its
// value, failing the test if the series is absent.
func sampleValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		return v
	}
	t.Errorf("series %s not found in /metrics", series)
	return 0
}

// TestMetricsEndpoint scrapes /metrics after a completed run and checks
// the exposition output carries both the daemon's HTTP families and the
// runner's stage histogram with observed samples.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	if v := submitAndWait(t, ts, `{"benchmark":"babelstream-omp","system":"archer2"}`); v.Status != StatusCompleted {
		t.Fatalf("run = %+v", v)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Families from every instrumented layer are present in one scrape.
	for _, want := range []string{
		"# TYPE benchd_http_requests_total counter",
		"# TYPE benchd_runs_total counter",
		"# TYPE benchd_queue_depth gauge",
		"# TYPE runner_stage_seconds histogram",
		"# TYPE buildsys_installs_total counter",
		"# TYPE perfstore_ingest_entries_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics", want)
		}
	}
	// The run left samples behind, not just empty families. Counters are
	// process-global, so assert >= 1 rather than exact counts (other
	// tests in this package complete runs too).
	for _, series := range []string{
		`benchd_runs_total{status="completed"}`,
		`runner_stage_seconds_count{stage="build"}`,
		`benchd_http_requests_total{route="/v1/runs",method="POST",code="202"}`,
	} {
		if v := sampleValue(t, body, series); v < 1 {
			t.Errorf("sample %s = %v, want >= 1", series, v)
		}
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("non-numeric sample value in %q", line)
		}
	}
}

// TestTraceEndpoints verifies a finished run's span tree is retrievable
// under its run id, and the listing summarizes it.
func TestTraceEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	v := submitAndWait(t, ts, `{"benchmark":"babelstream-omp","system":"archer2"}`)
	if v.Status != StatusCompleted {
		t.Fatalf("run = %+v", v)
	}

	var trace struct {
		ID   string             `json:"id"`
		Root telemetry.SpanView `json:"root"`
	}
	if code := getJSON(t, ts.URL+"/v1/traces/"+v.ID, &trace); code != http.StatusOK {
		t.Fatalf("trace status = %d", code)
	}
	if trace.ID != v.ID || trace.Root.Name != "benchd.run" {
		t.Fatalf("trace = %+v", trace)
	}
	if trace.Root.Attrs["run_id"] != v.ID {
		t.Errorf("root attrs = %v", trace.Root.Attrs)
	}
	// The pipeline stages hang off the runner's "run" span.
	stages := map[string]bool{}
	var walk func(telemetry.SpanView)
	walk = func(sv telemetry.SpanView) {
		stages[sv.Name] = true
		for _, c := range sv.Children {
			walk(c)
		}
	}
	walk(trace.Root)
	for _, want := range []string{"run", "concretize", "build", "schedule", "extract"} {
		if !stages[want] {
			t.Errorf("trace missing stage span %q (got %v)", want, stages)
		}
	}

	var list struct {
		Traces []struct {
			ID    string `json:"id"`
			Name  string `json:"name"`
			Spans int    `json:"spans"`
		} `json:"traces"`
		Count int `json:"count"`
	}
	if code := getJSON(t, ts.URL+"/v1/traces", &list); code != http.StatusOK {
		t.Fatalf("list status = %d", code)
	}
	if list.Count != 1 || list.Traces[0].ID != v.ID || list.Traces[0].Spans < 5 {
		t.Fatalf("list = %+v", list)
	}

	var e struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, ts.URL+"/v1/traces/run-999999", &e); code != http.StatusNotFound || e.Error == "" {
		t.Errorf("missing trace: code = %d, error = %q", code, e.Error)
	}
}

// TestPprofGating: profiling endpoints exist only when opted in.
func TestPprofGating(t *testing.T) {
	_, ts := newTestServer(t) // EnablePprof off
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without opt-in: status = %d", resp.StatusCode)
	}

	dir := t.TempDir()
	srv, err := New(Config{
		PerflogRoot: dir + "/perflogs",
		InstallTree: dir + "/install",
		EnablePprof: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	resp, err = http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with opt-in: status = %d", resp.StatusCode)
	}
	// The API routes still work through the pprof-wrapping mux.
	if code := getJSON(t, ts2.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz through pprof mux: status = %d", code)
	}
}

func loadFaults(t *testing.T, seed int64, schedule string) {
	t.Helper()
	rules, err := faultinject.ParseSchedule(schedule)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Load(seed, rules); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
}

func TestInjectedSubmitFaultIs503WithRetryAfter(t *testing.T) {
	_, ts := newTestServer(t)
	loadFaults(t, 1, "service.submit:error:times=1")
	body := `{"benchmark": "babelstream-omp", "system": "archer2"}`
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After hint")
	}
	// The fault was times=1: a client that honours the hint succeeds.
	if code := postJSON(t, ts.URL+"/v1/runs", body, nil); code != http.StatusAccepted {
		t.Errorf("retry after injected fault: status = %d, want 202", code)
	}
}

func TestTransientStoreSyncFaultIs503(t *testing.T) {
	srv, ts := newTestServer(t)
	// The query path only re-syncs files that exist; seed one.
	e := &perflog.Entry{
		Time: time.Date(2023, 7, 7, 10, 0, 0, 0, time.UTC), Benchmark: "bs",
		System: "archer2", Result: "pass",
		FOMs: map[string]fom.Value{}, Extra: map[string]string{},
	}
	if err := perflog.Append(srv.Store().Root(), e.System, e.Benchmark, e); err != nil {
		t.Fatal(err)
	}
	loadFaults(t, 1, "perfstore.sync:error:times=1")
	resp, err := http.Get(ts.URL + "/v1/query?benchmark=bs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during store fault: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After hint")
	}
	var out struct {
		Count int `json:"count"`
	}
	if code := getJSON(t, ts.URL+"/v1/query?benchmark=bs", &out); code != http.StatusOK {
		t.Fatalf("query after fault cleared: status = %d, want 200", code)
	}
	if out.Count != 1 {
		t.Errorf("entries after recovery = %d, want 1", out.Count)
	}
}
