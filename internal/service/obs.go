package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Self-observability wiring: the obs.Observer samples the daemon's own
// telemetry registry, evaluates alert rules, and captures profiles;
// this file is its HTTP surface (alert CRUD, metric history, profile
// fetch) and the alert-rule persistence that mirrors the schedule
// registry's.

// alertsFile is the alert-rule registry's on-disk name under
// Config.DataDir. Replaced atomically like schedules.json, so
// registered rules survive a reboot.
const alertsFile = "alerts.json"

// alertsPath returns the rule registry file path, or "" when the daemon
// has no data dir (rules are then in-memory only).
func (s *Server) alertsPath() string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, alertsFile)
}

// loadAlerts restores persisted rules at boot. Missing file = empty
// registry; a corrupt one is surfaced like a corrupt schedule registry.
func (s *Server) loadAlerts() error {
	path := s.alertsPath()
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: alerts: %w", err)
	}
	var rules []obs.Rule
	if err := json.Unmarshal(data, &rules); err != nil {
		return fmt.Errorf("service: alerts: parse %s: %w", path, err)
	}
	s.obs.RestoreRules(rules)
	if len(rules) > 0 {
		s.cfg.Logger.Info("alert rules restored", "count", len(rules), "path", path)
	}
	return nil
}

// saveAlerts atomically replaces the rule registry with the engine's
// current snapshot. Shares persistMu with the schedule registry saver
// (both are single small files; one lock keeps tmp writes from
// interleaving either way).
func (s *Server) saveAlerts() error {
	path := s.alertsPath()
	if path == "" {
		return nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	data, err := json.MarshalIndent(s.obs.SnapshotRules(), "", "  ")
	if err != nil {
		return fmt.Errorf("service: alerts: %w", err)
	}
	if err := obs.AtomicWrite(path, append(data, '\n')); err != nil {
		return fmt.Errorf("service: alerts: %w", err)
	}
	return nil
}

// persistAlerts saves and logs rather than failing the caller, matching
// persistSchedules.
func (s *Server) persistAlerts() {
	if err := s.saveAlerts(); err != nil {
		s.cfg.Logger.Error("alert persistence failed", "error", err.Error())
	}
}

func (s *Server) handleCreateAlert(w http.ResponseWriter, r *http.Request) {
	var rule obs.Rule
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rule); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	rule.ID = "" // ids are engine-assigned, never client-chosen
	st, err := s.obs.AddRule(rule)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.persistAlerts()
	w.Header().Set("Location", "/v1/alerts/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleListAlerts(w http.ResponseWriter, r *http.Request) {
	list := s.obs.Rules()
	firing := 0
	for _, st := range list {
		if st.State == obs.StateFiring {
			firing++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"alerts": list, "count": len(list), "firing": firing,
	})
}

func (s *Server) handleGetAlert(w http.ResponseWriter, r *http.Request) {
	st, ok := s.obs.Rule(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such alert %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDeleteAlert(w http.ResponseWriter, r *http.Request) {
	if !s.obs.RemoveRule(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such alert %q", r.PathValue("id")))
		return
	}
	s.persistAlerts()
	w.WriteHeader(http.StatusNoContent)
}

// handleMetricsHistory serves GET /v1/metrics/history: the sampled
// time series behind /metrics. name= selects one series (canonical key,
// e.g. benchd_queue_depth or benchd_runs_total{status="completed"});
// without it the response lists the available series names. since= is
// RFC 3339 or a relative Go duration ("15m" = the last 15 minutes);
// step= requests a resolution and the response reports the actual tier
// step served.
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	values := r.URL.Query()
	name := values.Get("name")
	if name == "" {
		names := s.obs.Names()
		writeJSON(w, http.StatusOK, map[string]any{
			"series": names, "count": len(names),
			"interval_s": s.obs.Interval().Seconds(),
		})
		return
	}
	var since time.Time
	if v := values.Get("since"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			since = time.Now().Add(-d)
		} else if t, terr := time.Parse(time.RFC3339, v); terr == nil {
			since = t
		} else {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("bad since %q (want RFC 3339 or a duration like 15m)", v))
			return
		}
	}
	var step time.Duration
	if v := values.Get("step"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad step %q", v))
			return
		}
		step = d
	}
	pts, actual, ok := s.obs.History(name, since, step)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no history for series %q (see GET /v1/metrics/history for names)", name))
		return
	}
	if pts == nil {
		pts = []obs.Point{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":   name,
		"points": pts,
		"count":  len(pts),
		"step_s": actual.Seconds(),
	})
}

// handleListProfiles serves GET /v1/profiles: the retained
// alert-triggered pprof artifacts, oldest first.
func (s *Server) handleListProfiles(w http.ResponseWriter, r *http.Request) {
	list := s.obs.Profiles()
	writeJSON(w, http.StatusOK, map[string]any{"profiles": list, "count": len(list)})
}

// handleGetProfile serves GET /v1/profiles/{id}: the raw pprof bytes
// (feed to `go tool pprof`). Metadata rides response headers so the
// body stays a valid profile.
func (s *Server) handleGetProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, data, err := s.obs.Profile(id)
	if err != nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such profile %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.pprof", id))
	w.Header().Set("X-Profile-Kind", info.Kind)
	w.Header().Set("X-Profile-Alert", info.AlertID)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}
