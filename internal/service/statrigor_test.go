package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/buildsys"
)

// newStatServer is newTestServer plus visibility into the install tree,
// which the stale-binary test needs to tamper with.
func newStatServer(t *testing.T) (*Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	tree := filepath.Join(dir, "install")
	srv, err := New(Config{
		PerflogRoot:    filepath.Join(dir, "perflogs"),
		InstallTree:    tree,
		Workers:        2,
		QueueDepth:     8,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts, tree
}

// TestRepetitionRunE2E submits a run with repetitions over HTTP and
// checks the persisted entry carries a complete, coherent repetition
// stats block: n matches the protocol, and ci_lo <= mean <= ci_hi.
func TestRepetitionRunE2E(t *testing.T) {
	_, ts, _ := newStatServer(t)

	v := submitAndWait(t, ts,
		`{"benchmark":"babelstream-omp","system":"archer2","repetitions":3,"warmup":1}`)
	if v.Status != StatusCompleted {
		t.Fatalf("run = %+v", v)
	}
	if v.Entry == nil {
		t.Fatal("no entry on completed run")
	}
	if got := v.Entry.Extra["repetitions"]; got != "3" {
		t.Errorf("repetitions extra = %q, want 3", got)
	}
	if got := v.Entry.Extra["warmup_discarded"]; got != "1" {
		t.Errorf("warmup_discarded extra = %q, want 1", got)
	}
	stat := func(field string) float64 {
		t.Helper()
		raw, ok := v.Entry.Extra["rep:triad_mbps:"+field]
		if !ok {
			t.Fatalf("entry missing rep:triad_mbps:%s; extras = %v", field, v.Entry.Extra)
		}
		x, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("rep:triad_mbps:%s = %q: %v", field, raw, err)
		}
		return x
	}
	if n := stat("n"); n != 3 {
		t.Errorf("n = %v, want 3", n)
	}
	mean, lo, hi := stat("mean"), stat("ci_lo"), stat("ci_hi")
	if !(lo <= mean && mean <= hi) {
		t.Errorf("CI does not bracket the mean: [%v, %v] mean %v", lo, hi, mean)
	}
	if mean <= 0 {
		t.Errorf("mean = %v, want > 0", mean)
	}
	if stat("stddev") < 0 || stat("rsd") < 0 {
		t.Error("negative dispersion")
	}
	// The FOM point value is the mean of the measured repetitions.
	if got := v.Entry.FOMs["triad_mbps"].Value; got != mean {
		t.Errorf("FOM value %v != repetition mean %v", got, mean)
	}

	// The same stats survive the store: query the entry back.
	var q struct {
		Entries []entryView `json:"entries"`
	}
	if code := getJSON(t, ts.URL+"/v1/query?system=archer2&benchmark=babelstream-omp", &q); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if len(q.Entries) != 1 {
		t.Fatalf("queried %d entries, want 1", len(q.Entries))
	}
	if got := q.Entries[0].Extra["rep:triad_mbps:n"]; got != "3" {
		t.Errorf("queried n = %q, want 3", got)
	}
}

// TestSubmitStaleBinary409 is the pre-flight acceptance path: after a
// successful run, tamper with every installed manifest's DAG hash and
// resubmit — the daemon must answer 409 with the typed stale-binary
// body instead of queueing the run.
func TestSubmitStaleBinary409(t *testing.T) {
	_, ts, tree := newStatServer(t)

	v := submitAndWait(t, ts, `{"benchmark":"babelstream-omp","system":"archer2"}`)
	if v.Status != StatusCompleted {
		t.Fatalf("seed run = %+v", v)
	}

	prefixes, err := os.ReadDir(tree)
	if err != nil {
		t.Fatal(err)
	}
	tampered := 0
	for _, d := range prefixes {
		if !d.IsDir() {
			continue
		}
		prefix := filepath.Join(tree, d.Name())
		m, err := buildsys.ReadManifest(prefix)
		if err != nil {
			t.Fatal(err)
		}
		m.Hash = "deadbeefdeadbeef"
		if err := buildsys.WriteManifest(prefix, m); err != nil {
			t.Fatal(err)
		}
		tampered++
	}
	if tampered == 0 {
		t.Fatal("no installed prefixes to tamper with")
	}

	var body struct {
		Code     string `json:"code"`
		Package  string `json:"package"`
		Prefix   string `json:"prefix"`
		WantHash string `json:"want_hash"`
		GotHash  string `json:"got_hash"`
		Error    string `json:"error"`
	}
	code := postJSON(t, ts.URL+"/v1/runs",
		`{"benchmark":"babelstream-omp","system":"archer2"}`, &body)
	if code != http.StatusConflict {
		t.Fatalf("submit after tamper: status = %d, want 409 (body %+v)", code, body)
	}
	if body.Code != "stale_binary" {
		t.Errorf("code = %q, want stale_binary", body.Code)
	}
	if body.Package == "" || body.Prefix == "" || body.WantHash == "" {
		t.Errorf("incomplete stale body: %+v", body)
	}
	if body.GotHash != "deadbeefdeadbeef" {
		t.Errorf("got_hash = %q", body.GotHash)
	}
}

// TestSubmitBadProtocol rejects malformed repetition protocols at the
// API boundary with 400, before any work is queued.
func TestSubmitBadProtocol(t *testing.T) {
	_, ts, _ := newStatServer(t)

	for _, body := range []string{
		`{"benchmark":"babelstream-omp","system":"archer2","repetitions":-1}`,
		`{"benchmark":"babelstream-omp","system":"archer2","warmup":-2}`,
		`{"benchmark":"babelstream-omp","system":"archer2","repetitions":900,"warmup":200}`,
	} {
		var out map[string]any
		if code := postJSON(t, ts.URL+"/v1/runs", body, &out); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", body, code)
		}
	}
}

// TestRegressionsUnstableCount checks /v1/regressions surfaces the
// variance-gate verdict count alongside flagged.
func TestRegressionsUnstableCount(t *testing.T) {
	_, ts, _ := newStatServer(t)

	// Three runs of the same target build a series; high-variance rep
	// stats are easier to inject directly at the perflog layer, but the
	// endpoint shape (unstable key present, integer) must hold even for
	// an all-stable series.
	for i := 0; i < 3; i++ {
		if v := submitAndWait(t, ts,
			`{"benchmark":"babelstream-omp","system":"archer2","repetitions":3}`); v.Status != StatusCompleted {
			t.Fatalf("run %d = %+v", i, v)
		}
	}
	var out struct {
		Count    int `json:"count"`
		Flagged  int `json:"flagged"`
		Unstable int `json:"unstable"`
	}
	if code := getJSON(t, ts.URL+"/v1/regressions?fom=triad_mbps&system=archer2", &out); code != http.StatusOK {
		t.Fatalf("regressions status = %d", code)
	}
	if out.Count != 1 {
		t.Fatalf("count = %d, want 1", out.Count)
	}
	if out.Unstable != 0 {
		t.Errorf("unstable = %d, want 0 for a ±1%% jitter series", out.Unstable)
	}
}
