package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/perflog"
	"repro/internal/telemetry"
)

// TestWritePathGroupCommitDedup drives real runs through the daemon and
// proves the group-commit wiring end to end: entries reach the store
// through AddBatch (zero bytes parsed — the worker's reconciliation
// SyncFile never re-reads commit-durable bytes, so nothing is fsynced
// or parsed twice), the commit counter moves, and /metrics exposes the
// write-path families.
func TestWritePathGroupCommitDedup(t *testing.T) {
	commitsBefore, _ := telemetry.DefaultRegistry.Value("perflog_commits_total", "ok")

	srv, ts := newTestServer(t)

	const runs = 3
	ids := make([]string, 0, runs)
	for i := 0; i < runs; i++ {
		var submitted runView
		if code := postJSON(t, ts.URL+"/v1/runs",
			`{"benchmark":"babelstream-omp","system":"archer2"}`, &submitted); code != http.StatusAccepted {
			t.Fatalf("submit status = %d", code)
		}
		ids = append(ids, submitted.ID)
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("run %s did not finish", id)
			}
			var v runView
			if code := getJSON(t, ts.URL+"/v1/runs/"+id, &v); code != http.StatusOK {
				t.Fatalf("poll status = %d", code)
			}
			if v.Status == StatusCompleted {
				break
			}
			if v.Status == StatusFailed {
				t.Fatalf("run %s failed: %+v", id, v)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Every entry arrived pre-parsed via the commit notification: the
	// store indexed all runs without reading a single byte back.
	st := srv.store.Stats()
	if st.EntriesAdded < runs {
		t.Fatalf("store added %d entries, want >= %d", st.EntriesAdded, runs)
	}
	if st.BytesParsed != 0 {
		t.Fatalf("store parsed %d bytes; commit ingest should make every sync a no-op", st.BytesParsed)
	}

	commitsAfter, ok := telemetry.DefaultRegistry.Value("perflog_commits_total", "ok")
	if !ok || commitsAfter-commitsBefore < 1 {
		t.Fatalf("perflog_commits_total{ok} moved %g, want >= 1", commitsAfter-commitsBefore)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`perflog_commits_total{status="ok"}`,
		"benchd_ingest_batch_size_count",
		"perflog_commit_entries_count",
		"perflog_fsync_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics", want)
		}
	}
	if v := sampleValue(t, body, "benchd_ingest_batch_size_count"); v < 1 {
		t.Errorf("benchd_ingest_batch_size_count = %g, want >= 1", v)
	}
}

// TestShutdownFlushesWriter: graceful shutdown flushes the shared
// writer before the final seal — an entry still accumulating under a
// long commit window is committed and acknowledged, not dropped.
func TestShutdownFlushesWriter(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{
		PerflogRoot:    dir + "/perflogs",
		InstallTree:    dir + "/install",
		Workers:        1,
		QueueDepth:     4,
		RequestTimeout: 30 * time.Second,
		CommitInterval: time.Hour, // nothing commits until flush/close
	})
	if err != nil {
		t.Fatal(err)
	}
	w := srv.Writer()
	if w == nil {
		t.Fatal("server has no shared writer")
	}
	acked := make(chan error, 1)
	go func() {
		e := &perflog.Entry{
			Time: time.Now().UTC(), Benchmark: "babelstream-omp",
			System: "archer2", Result: "pass",
		}
		acked <- w.Append("archer2", "babelstream-omp", e)
	}()
	for n, _ := w.Pending(); n == 0; n, _ = w.Pending() {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with a pending batch: %v", err)
	}
	if err := <-acked; err != nil {
		t.Fatalf("pending append not flushed by shutdown: %v", err)
	}
	entries, err := perflog.ReadTree(dir + "/perflogs")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("perflog tree holds %d entries after shutdown flush, want 1", len(entries))
	}
}

// TestShutdownDeadlineClosesWriter: the ctx-deadline branch of Shutdown
// must still close the shared writer — the accumulating batch is
// force-flushed (acked entries are durable), appenders blocked on the
// commit window are released immediately rather than after MaxDelay,
// and the cached descriptors are freed. A worker blocked inside the
// hour-long commit window keeps the drain from finishing, so an
// already-canceled context deterministically takes the deadline path.
func TestShutdownDeadlineClosesWriter(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{
		PerflogRoot:    dir + "/perflogs",
		InstallTree:    dir + "/install",
		Workers:        1,
		QueueDepth:     4,
		RequestTimeout: 30 * time.Second,
		CommitInterval: time.Hour, // workers block in Append until flush/close
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code := postJSON(t, ts.URL+"/v1/runs",
		`{"benchmark":"babelstream-omp","system":"archer2"}`, nil); code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	w := srv.Writer()
	deadline := time.Now().Add(30 * time.Second)
	for n, _ := w.Pending(); n == 0; n, _ = w.Pending() {
		if time.Now().After(deadline) {
			t.Fatal("worker never enqueued its entry into the writer")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before Shutdown: the drain cannot win the select
	if err := srv.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("deadline shutdown returned %v, want context.Canceled", err)
	}
	// The writer was closed on the way out: the blocked worker's entry
	// got a real durability verdict and is on disk…
	waitEntries := time.Now().Add(30 * time.Second)
	for {
		entries, err := perflog.ReadTree(dir + "/perflogs")
		if err == nil && len(entries) == 1 {
			break
		}
		if time.Now().After(waitEntries) {
			t.Fatalf("perflog tree after deadline shutdown: entries=%d err=%v", len(entries), err)
		}
		time.Sleep(time.Millisecond)
	}
	// …and new appends are refused rather than accumulating forever in a
	// writer nobody will ever flush again.
	if err := w.Append("archer2", "babelstream-omp", &perflog.Entry{
		Time: time.Now().UTC(), Benchmark: "babelstream-omp",
		System: "archer2", Result: "pass",
	}); err != perflog.ErrWriterClosed {
		t.Fatalf("append after deadline shutdown = %v, want ErrWriterClosed", err)
	}
}
