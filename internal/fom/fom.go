// Package fom handles Figures of Merit: extracting them from benchmark
// output with regular expressions (as ReFrame does, paper §2.4), checking
// sanity patterns, and turning raw FOMs into the efficiency metrics
// Principle 1 calls for — including Pennycook's performance-portability
// metric that motivates the whole methodology.
package fom

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Value is one extracted Figure of Merit.
type Value struct {
	Name  string
	Value float64
	Unit  string
}

// String renders "name=value unit".
func (v Value) String() string {
	if v.Unit == "" {
		return fmt.Sprintf("%s=%g", v.Name, v.Value)
	}
	return fmt.Sprintf("%s=%g %s", v.Name, v.Value, v.Unit)
}

// Pattern extracts one named FOM from benchmark output. Regex must have
// at least one capture group; Group selects which one holds the number
// (default 1).
type Pattern struct {
	Name  string
	Unit  string
	Regex *regexp.Regexp
	Group int
	// Scale multiplies the extracted number (0 means 1), for unit
	// conversions such as DOF/s → MDOF/s at extraction time.
	Scale float64
	// All, when true, extracts every match and reports the Reduce-d
	// value; otherwise the first match wins.
	All    bool
	Reduce func([]float64) float64 // used with All; default: max
}

// MustPattern builds a Pattern from a regex source, panicking on bad
// regexes (patterns are static benchmark definitions).
func MustPattern(name, unit, regex string) Pattern {
	return Pattern{Name: name, Unit: unit, Regex: regexp.MustCompile(regex)}
}

// Extract applies the patterns to output, returning one Value per
// pattern. A pattern that does not match is an error: a benchmark whose
// FOM is missing did not run correctly.
func Extract(output string, patterns []Pattern) (map[string]Value, error) {
	out := make(map[string]Value, len(patterns))
	for _, p := range patterns {
		if p.Regex == nil {
			return nil, fmt.Errorf("fom: pattern %q has no regex", p.Name)
		}
		group := p.Group
		if group == 0 {
			group = 1
		}
		if group >= p.Regex.NumSubexp()+1 {
			return nil, fmt.Errorf("fom: pattern %q selects group %d of %d", p.Name, group, p.Regex.NumSubexp())
		}
		var nums []float64
		for _, m := range p.Regex.FindAllStringSubmatch(output, -1) {
			v, err := strconv.ParseFloat(strings.TrimSpace(m[group]), 64)
			if err != nil {
				return nil, fmt.Errorf("fom: pattern %q matched non-numeric %q", p.Name, m[group])
			}
			nums = append(nums, v)
			if !p.All {
				break
			}
		}
		if len(nums) == 0 {
			return nil, fmt.Errorf("fom: pattern %q did not match benchmark output", p.Name)
		}
		val := nums[0]
		if p.All {
			reduce := p.Reduce
			if reduce == nil {
				reduce = Max
			}
			val = reduce(nums)
		}
		if p.Scale != 0 {
			val *= p.Scale
		}
		out[p.Name] = Value{Name: p.Name, Value: val, Unit: p.Unit}
	}
	return out, nil
}

// Max is a Reduce function returning the maximum.
func Max(xs []float64) float64 {
	best := xs[0]
	for _, x := range xs[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// Min is a Reduce function returning the minimum.
func Min(xs []float64) float64 {
	best := xs[0]
	for _, x := range xs[1:] {
		if x < best {
			best = x
		}
	}
	return best
}

// Mean is a Reduce function returning the arithmetic mean.
func Mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sanity checks that benchmark output indicates a valid run (ReFrame's
// sanity patterns): every Require regex must match and every Forbid regex
// must not.
type Sanity struct {
	Require []*regexp.Regexp
	Forbid  []*regexp.Regexp
}

// Check returns nil when the output passes all sanity conditions.
func (s Sanity) Check(output string) error {
	for _, re := range s.Require {
		if !re.MatchString(output) {
			return fmt.Errorf("fom: sanity failed: output does not match %q", re)
		}
	}
	for _, re := range s.Forbid {
		if re.MatchString(output) {
			return fmt.Errorf("fom: sanity failed: output matches forbidden %q", re)
		}
	}
	return nil
}

// Efficiency is the Principle 1 metric: the measured FOM as a fraction of
// the platform's theoretical peak. Returns 0 for nonpositive peaks.
func Efficiency(measured, peak float64) float64 {
	if peak <= 0 {
		return 0
	}
	return measured / peak
}

// Ratio is the paper's Equation 1, E = VAR / ORIG: the gain of a variant
// over the original implementation.
func Ratio(variant, original float64) float64 {
	if original <= 0 {
		return 0
	}
	return variant / original
}

// PerfPortability is Pennycook's performance-portability metric: the
// harmonic mean of an application's efficiencies across a platform set H,
// defined to be 0 when the application fails to run anywhere in H.
//
//	PP(a, p, H) = |H| / Σ_{i∈H} 1/e_i(a,p)   if a runs on all i ∈ H
//	            = 0                          otherwise
func PerfPortability(efficiencies []float64) float64 {
	if len(efficiencies) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range efficiencies {
		if e <= 0 {
			return 0 // fails (or is unsupported) on some platform
		}
		sum += 1 / e
	}
	return float64(len(efficiencies)) / sum
}

// Table renders FOM values as an aligned two-column text table, sorted by
// name, for human-readable reports.
func Table(foms map[string]Value) string {
	names := make([]string, 0, len(foms))
	width := 0
	for n := range foms {
		names = append(names, n)
		if len(n) > width {
			width = len(n)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		v := foms[n]
		fmt.Fprintf(&b, "%-*s  %12.4f %s\n", width, n, v.Value, v.Unit)
	}
	return b.String()
}
