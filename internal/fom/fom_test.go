package fom

import (
	"math"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

const babelStreamOutput = `BabelStream
Version: 4.0
Implementation: OpenMP
Running kernels 100 times
Precision: double
Array size: 268.4 MB (=0.3 GB)
Total size: 805.3 MB (=0.8 GB)
Function    MBytes/sec  Min (sec)   Max         Average
Copy        175231.229  0.00306     0.00331     0.00317
Mul         174801.123  0.00307     0.00335     0.00319
Add         190214.405  0.00423     0.00458     0.00441
Triad       190849.762  0.00422     0.00455     0.00437
Dot         205112.870  0.00262     0.00289     0.00274
`

func TestExtractBabelStreamTriad(t *testing.T) {
	patterns := []Pattern{
		MustPattern("triad_mbps", "MB/s", `Triad\s+([0-9.]+)`),
		MustPattern("copy_mbps", "MB/s", `Copy\s+([0-9.]+)`),
	}
	got, err := Extract(babelStreamOutput, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if v := got["triad_mbps"].Value; math.Abs(v-190849.762) > 1e-6 {
		t.Errorf("triad = %g", v)
	}
	if v := got["copy_mbps"].Value; math.Abs(v-175231.229) > 1e-6 {
		t.Errorf("copy = %g", v)
	}
	if got["triad_mbps"].Unit != "MB/s" {
		t.Errorf("unit = %q", got["triad_mbps"].Unit)
	}
}

func TestExtractMissingPatternFails(t *testing.T) {
	patterns := []Pattern{MustPattern("gflops", "GF/s", `GFLOP/s rating of:\s+([0-9.]+)`)}
	if _, err := Extract(babelStreamOutput, patterns); err == nil {
		t.Error("missing FOM must be an error (benchmark did not run correctly)")
	}
}

func TestExtractAllWithReduce(t *testing.T) {
	output := "iter 1: 10.5 GB/s\niter 2: 12.5 GB/s\niter 3: 11.0 GB/s\n"
	p := Pattern{
		Name: "bw", Unit: "GB/s",
		Regex: regexp.MustCompile(`iter \d+: ([0-9.]+) GB/s`),
		All:   true,
	}
	got, err := Extract(output, []Pattern{p})
	if err != nil {
		t.Fatal(err)
	}
	if got["bw"].Value != 12.5 {
		t.Errorf("default reduce should be max: %g", got["bw"].Value)
	}
	p.Reduce = Mean
	got, _ = Extract(output, []Pattern{p})
	if math.Abs(got["bw"].Value-11.333333) > 1e-4 {
		t.Errorf("mean = %g", got["bw"].Value)
	}
	p.Reduce = Min
	got, _ = Extract(output, []Pattern{p})
	if got["bw"].Value != 10.5 {
		t.Errorf("min = %g", got["bw"].Value)
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract("x", []Pattern{{Name: "no-regex"}}); err == nil {
		t.Error("nil regex accepted")
	}
	bad := Pattern{Name: "g", Regex: regexp.MustCompile(`val (\d+)`), Group: 5}
	if _, err := Extract("val 3", []Pattern{bad}); err == nil {
		t.Error("out-of-range group accepted")
	}
	nonNum := Pattern{Name: "n", Regex: regexp.MustCompile(`val (\w+)`)}
	if _, err := Extract("val abc", []Pattern{nonNum}); err == nil {
		t.Error("non-numeric capture accepted")
	}
}

func TestSanity(t *testing.T) {
	s := Sanity{
		Require: []*regexp.Regexp{regexp.MustCompile(`Solution validates`)},
		Forbid:  []*regexp.Regexp{regexp.MustCompile(`(?i)error`)},
	}
	if err := s.Check("Solution validates: residual 1e-9"); err != nil {
		t.Errorf("valid output rejected: %v", err)
	}
	if err := s.Check("done"); err == nil {
		t.Error("missing required pattern accepted")
	}
	if err := s.Check("Solution validates\nERROR: NaN detected"); err == nil {
		t.Error("forbidden pattern accepted")
	}
}

func TestEfficiency(t *testing.T) {
	if e := Efficiency(225.6, 282); math.Abs(e-0.8) > 1e-9 {
		t.Errorf("efficiency = %g", e)
	}
	if Efficiency(100, 0) != 0 {
		t.Error("zero peak must give zero efficiency")
	}
}

func TestRatioEquation1(t *testing.T) {
	// The paper's worked example: E_I = 39.0/24.0 = 1.625 and
	// E_A = 51.0/24.0 = 2.125 on Cascade Lake; E_A = 124.2/39.2 = 3.168
	// on Rome.
	if e := Ratio(39.0, 24.0); math.Abs(e-1.625) > 1e-9 {
		t.Errorf("E_I = %g, want 1.625", e)
	}
	if e := Ratio(51.0, 24.0); math.Abs(e-2.125) > 1e-9 {
		t.Errorf("E_A = %g, want 2.125", e)
	}
	if e := Ratio(124.2, 39.2); math.Abs(e-3.168) > 1e-3 {
		t.Errorf("E_A(Rome) = %g, want 3.168", e)
	}
	if Ratio(1, 0) != 0 {
		t.Error("zero original must give 0")
	}
}

func TestPerfPortability(t *testing.T) {
	// Harmonic mean of equal values is the value.
	if pp := PerfPortability([]float64{0.5, 0.5, 0.5}); math.Abs(pp-0.5) > 1e-12 {
		t.Errorf("PP = %g", pp)
	}
	// One failure zeroes the metric (the metric's defining property).
	if pp := PerfPortability([]float64{0.9, 0.9, 0}); pp != 0 {
		t.Errorf("PP with failure = %g, want 0", pp)
	}
	if PerfPortability(nil) != 0 {
		t.Error("empty set PP should be 0")
	}
	// Harmonic mean is dominated by the worst platform.
	pp := PerfPortability([]float64{0.9, 0.1})
	if pp > 0.19 {
		t.Errorf("PP = %g should be pulled toward the worst efficiency", pp)
	}
}

func TestPerfPortabilityBounds(t *testing.T) {
	// Property: 0 < PP <= min? No: harmonic mean lies between min and
	// max of positive inputs.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		effs := make([]float64, len(raw))
		lo, hi := 2.0, -1.0
		for i, r := range raw {
			effs[i] = 0.01 + float64(r)/256.0
			if effs[i] < lo {
				lo = effs[i]
			}
			if effs[i] > hi {
				hi = effs[i]
			}
		}
		pp := PerfPortability(effs)
		return pp >= lo-1e-12 && pp <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	foms := map[string]Value{
		"triad": {Name: "triad", Value: 190.85, Unit: "GB/s"},
		"copy":  {Name: "copy", Value: 175.23, Unit: "GB/s"},
	}
	got := Table(foms)
	// Sorted: copy before triad.
	if !strings.Contains(got, "copy") || !strings.Contains(got, "triad") {
		t.Fatalf("table missing rows:\n%s", got)
	}
	if strings.Index(got, "copy") > strings.Index(got, "triad") {
		t.Error("rows not sorted")
	}
}

func TestValueString(t *testing.T) {
	v := Value{Name: "l0", Value: 95.36, Unit: "MDOF/s"}
	if v.String() != "l0=95.36 MDOF/s" {
		t.Errorf("String = %q", v.String())
	}
	u := Value{Name: "count", Value: 3}
	if u.String() != "count=3" {
		t.Errorf("String = %q", u.String())
	}
}
