package yamlite

import "testing"

// FuzzParse ensures the YAML-subset parser never panics and that
// successfully parsed documents have well-formed value types.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"a: 1\nb:\n  c: x\n",
		"- 1\n- two\n-\n  k: v\n",
		"key: 'quo''ted' # comment\n",
		"a:\n - 1\n  - 2\n",
		": x\n",
		"\t: 1\n",
		"a: \"unterminated\n",
		"filters:\n  - column: c\n    op: ==\n    value: pass\n",
	} {
		f.Add(seed)
	}
	var check func(t *testing.T, v Value)
	check = func(t *testing.T, v Value) {
		switch x := v.(type) {
		case nil, string, int64, float64, bool:
		case map[string]Value:
			for _, inner := range x {
				check(t, inner)
			}
		case []Value:
			for _, inner := range x {
				check(t, inner)
			}
		default:
			t.Fatalf("unexpected value type %T", v)
		}
	}
	f.Fuzz(func(t *testing.T, input string) {
		v, err := Parse(input)
		if err != nil {
			return
		}
		check(t, v)
	})
}
