// Package yamlite implements the small YAML subset used by the
// framework's configuration files (system configs, post-processing plot
// configs). The paper's framework drives post-processing "via a YAML
// configuration file" (§2.4); the standard library has no YAML support, so
// this package provides just enough:
//
//   - block mappings (indentation-based)
//   - block sequences ("- " items, including sequences of mappings)
//   - scalars: strings (plain, 'single' or "double" quoted), integers,
//     floats, booleans, null
//   - comments introduced by '#'
//
// It deliberately omits anchors, aliases, multi-document streams, flow
// collections spanning lines, and block scalars.
package yamlite

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is the result of parsing: one of
// map[string]Value, []Value, string, int64, float64, bool, or nil.
type Value interface{}

// Parse decodes a document into a Value.
func Parse(text string) (Value, error) {
	p := &docParser{}
	for _, raw := range strings.Split(text, "\n") {
		line, ok := stripLine(raw)
		if !ok {
			continue
		}
		p.lines = append(p.lines, line)
	}
	if len(p.lines) == 0 {
		return nil, nil
	}
	v, next, err := p.parseBlock(0, p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(p.lines) {
		return nil, fmt.Errorf("yamlite: line %d: unexpected content %q", p.lines[next].num, p.lines[next].text)
	}
	return v, nil
}

type line struct {
	num    int // 1-based source line number
	indent int
	text   string // content with indentation stripped
}

// stripLine removes comments and trailing space; returns ok=false for
// blank/comment-only lines.
func stripLine(raw string) (line, bool) {
	// Track quoting so '#' inside quotes survives.
	indent := 0
	for indent < len(raw) && raw[indent] == ' ' {
		indent++
	}
	if indent < len(raw) && raw[indent] == '\t' {
		// Treat tabs as errors later by leaving them in the text.
		return line{indent: indent, text: raw[indent:]}, true
	}
	content := raw[indent:]
	inS, inD := false, false
	for i := 0; i < len(content); i++ {
		switch c := content[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == '#' && !inS && !inD && (i == 0 || content[i-1] == ' ' || content[i-1] == '\t'):
			content = content[:i]
		}
		if i >= len(content) {
			break
		}
	}
	content = strings.TrimRight(content, " \r")
	if content == "" {
		return line{}, false
	}
	return line{indent: indent, text: content}, true
}

type docParser struct {
	lines []line
}

// parseBlock parses the lines beginning at index i with the given
// indentation, returning the value and the index of the first unconsumed
// line.
func (p *docParser) parseBlock(i, indent int) (Value, int, error) {
	if i >= len(p.lines) {
		return nil, i, fmt.Errorf("yamlite: unexpected end of input")
	}
	l := p.lines[i]
	if strings.HasPrefix(l.text, "\t") || strings.Contains(l.text, "\t") && strings.HasPrefix(strings.TrimLeft(l.text, " "), "\t") {
		return nil, i, fmt.Errorf("yamlite: line %d: tabs are not allowed for indentation", l.num)
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseSequence(i, indent)
	}
	if keyOf(l.text) != "" {
		return p.parseMapping(i, indent)
	}
	// Bare scalar document.
	v, err := parseScalar(l.text)
	if err != nil {
		return nil, i, fmt.Errorf("yamlite: line %d: %w", l.num, err)
	}
	return v, i + 1, nil
}

func (p *docParser) parseMapping(i, indent int) (Value, int, error) {
	m := map[string]Value{}
	for i < len(p.lines) {
		l := p.lines[i]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, i, fmt.Errorf("yamlite: line %d: unexpected indentation", l.num)
		}
		key := keyOf(l.text)
		if key == "" {
			return nil, i, fmt.Errorf("yamlite: line %d: expected 'key:' mapping entry, got %q", l.num, l.text)
		}
		if _, dup := m[unquote(key)]; dup {
			return nil, i, fmt.Errorf("yamlite: line %d: duplicate key %q", l.num, key)
		}
		rest := strings.TrimSpace(l.text[len(key)+1:])
		i++
		if rest != "" {
			v, err := parseScalar(rest)
			if err != nil {
				return nil, i, fmt.Errorf("yamlite: line %d: %w", l.num, err)
			}
			m[unquote(key)] = v
			continue
		}
		// Value is the following indented block (or null if none).
		if i >= len(p.lines) || p.lines[i].indent <= indent {
			m[unquote(key)] = nil
			continue
		}
		v, next, err := p.parseBlock(i, p.lines[i].indent)
		if err != nil {
			return nil, i, err
		}
		m[unquote(key)] = v
		i = next
	}
	return m, i, nil
}

func (p *docParser) parseSequence(i, indent int) (Value, int, error) {
	var seq []Value
	for i < len(p.lines) {
		l := p.lines[i]
		if l.indent != indent || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			if l.indent >= indent && len(seq) > 0 {
				return nil, i, fmt.Errorf("yamlite: line %d: expected '- ' sequence item", l.num)
			}
			break
		}
		if l.text == "-" {
			// Item is the following indented block.
			i++
			if i >= len(p.lines) || p.lines[i].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			v, next, err := p.parseBlock(i, p.lines[i].indent)
			if err != nil {
				return nil, i, err
			}
			seq = append(seq, v)
			i = next
			continue
		}
		rest := l.text[2:]
		// An item of the form "- key: value" starts an inline mapping
		// whose further keys sit at indent+2.
		if k := keyOf(rest); k != "" {
			// Rewrite this line as a mapping line at a deeper indent
			// and parse a mapping block from here.
			saved := p.lines[i]
			p.lines[i] = line{num: l.num, indent: indent + 2, text: rest}
			v, next, err := p.parseMapping(i, indent+2)
			p.lines[i] = saved
			if err != nil {
				return nil, i, err
			}
			seq = append(seq, v)
			i = next
			continue
		}
		v, err := parseScalar(rest)
		if err != nil {
			return nil, i, fmt.Errorf("yamlite: line %d: %w", l.num, err)
		}
		seq = append(seq, v)
		i++
	}
	return seq, i, nil
}

// keyOf returns the mapping key if the text begins a "key:" entry,
// else "".
func keyOf(text string) string {
	inS, inD := false, false
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == ':' && !inS && !inD:
			if i+1 == len(text) || text[i+1] == ' ' {
				key := strings.TrimSpace(text[:i])
				if key == "" || strings.HasPrefix(key, "- ") {
					return ""
				}
				return key
			}
		}
	}
	return ""
}

func unquote(s string) string {
	if len(s) >= 2 {
		if s[0] == '\'' && s[len(s)-1] == '\'' {
			return strings.ReplaceAll(s[1:len(s)-1], "''", "'")
		}
		if s[0] == '"' && s[len(s)-1] == '"' {
			if u, err := strconv.Unquote(s); err == nil {
				return u
			}
		}
	}
	return s
}

func parseScalar(s string) (Value, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') {
		if s[0] == '\'' && s[len(s)-1] == '\'' {
			return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
		}
		if s[0] == '"' && s[len(s)-1] == '"' {
			u, err := strconv.Unquote(s)
			if err != nil {
				return nil, fmt.Errorf("bad quoted string %s", s)
			}
			return u, nil
		}
		return nil, fmt.Errorf("unterminated quoted string %s", s)
	}
	switch s {
	case "null", "~", "Null", "NULL":
		return nil, nil
	case "true", "True", "TRUE":
		return true, nil
	case "false", "False", "FALSE":
		return false, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// --- Typed accessors -----------------------------------------------------

// Map asserts v is a mapping.
func Map(v Value) (map[string]Value, error) {
	m, ok := v.(map[string]Value)
	if !ok {
		return nil, fmt.Errorf("yamlite: expected mapping, got %T", v)
	}
	return m, nil
}

// Seq asserts v is a sequence.
func Seq(v Value) ([]Value, error) {
	s, ok := v.([]Value)
	if !ok {
		return nil, fmt.Errorf("yamlite: expected sequence, got %T", v)
	}
	return s, nil
}

// Str asserts v is a string (numbers and bools are stringified).
func Str(v Value) (string, error) {
	switch x := v.(type) {
	case string:
		return x, nil
	case int64:
		return strconv.FormatInt(x, 10), nil
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), nil
	case bool:
		return strconv.FormatBool(x), nil
	default:
		return "", fmt.Errorf("yamlite: expected string, got %T", v)
	}
}

// Int asserts v is an integer.
func Int(v Value) (int64, error) {
	switch x := v.(type) {
	case int64:
		return x, nil
	case float64:
		if x == float64(int64(x)) {
			return int64(x), nil
		}
	}
	return 0, fmt.Errorf("yamlite: expected integer, got %T(%v)", v, v)
}

// Float asserts v is numeric.
func Float(v Value) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case int64:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("yamlite: expected number, got %T", v)
	}
}

// Bool asserts v is a boolean.
func Bool(v Value) (bool, error) {
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("yamlite: expected bool, got %T", v)
	}
	return b, nil
}

// GetPath walks nested mappings by dotted path ("plot.series.column"),
// returning an error naming the missing segment.
func GetPath(v Value, path string) (Value, error) {
	cur := v
	for _, seg := range strings.Split(path, ".") {
		m, err := Map(cur)
		if err != nil {
			return nil, fmt.Errorf("yamlite: path %q: %w", path, err)
		}
		next, ok := m[seg]
		if !ok {
			return nil, fmt.Errorf("yamlite: path %q: missing key %q", path, seg)
		}
		cur = next
	}
	return cur, nil
}

// Keys returns a mapping's keys, sorted, for deterministic iteration.
func Keys(m map[string]Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
