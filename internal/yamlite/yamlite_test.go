package yamlite

import (
	"reflect"
	"testing"
)

func mustParse(t *testing.T, text string) Value {
	t.Helper()
	v, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return v
}

func TestEmptyDocument(t *testing.T) {
	for _, text := range []string{"", "\n\n", "# just a comment\n", "   \n # c\n"} {
		v, err := Parse(text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
		}
		if v != nil {
			t.Errorf("Parse(%q) = %v, want nil", text, v)
		}
	}
}

func TestScalars(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"hello", "hello"},
		{"42", int64(42)},
		{"-7", int64(-7)},
		{"3.14", 3.14},
		{"true", true},
		{"False", false},
		{"null", nil},
		{"~", nil},
		{"'quoted string'", "quoted string"},
		{`"esc\tape"`, "esc\tape"},
		{"'it''s'", "it's"},
		{"2x29", "2x29"}, // not a number
	}
	for _, c := range cases {
		got := mustParse(t, c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestFlatMapping(t *testing.T) {
	v := mustParse(t, "name: archer2\ncores: 128\nbw: 409.6\ngpu: false\n")
	want := map[string]Value{
		"name": "archer2", "cores": int64(128), "bw": 409.6, "gpu": false,
	}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("got %#v", v)
	}
}

func TestNestedMapping(t *testing.T) {
	text := `
system:
  name: isambard-macs
  partition:
    name: cascadelake
    cores: 40
`
	v := mustParse(t, text)
	got, err := GetPath(v, "system.partition.cores")
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(40) {
		t.Errorf("cores = %v", got)
	}
	if _, err := GetPath(v, "system.partition.sockets"); err == nil {
		t.Error("missing key must error")
	}
	if _, err := GetPath(v, "system.name.inner"); err == nil {
		t.Error("walking through a scalar must error")
	}
}

func TestSequences(t *testing.T) {
	v := mustParse(t, "- a\n- 2\n- true\n")
	want := []Value{"a", int64(2), true}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("got %#v", v)
	}
}

func TestSequenceOfMappings(t *testing.T) {
	text := `
series:
  - column: triad
    label: Triad
  - column: copy
    label: Copy
`
	v := mustParse(t, text)
	s, err := GetPath(v, "series")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Seq(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 {
		t.Fatalf("len = %d", len(seq))
	}
	m0, err := Map(seq[0])
	if err != nil {
		t.Fatal(err)
	}
	if m0["column"] != "triad" || m0["label"] != "Triad" {
		t.Errorf("seq[0] = %#v", m0)
	}
	m1, _ := Map(seq[1])
	if m1["column"] != "copy" {
		t.Errorf("seq[1] = %#v", m1)
	}
}

func TestSequenceOfBlocks(t *testing.T) {
	text := `
partitions:
  -
    name: compute
    nodes: 5860
  -
    name: gpu
    nodes: 4
`
	v := mustParse(t, text)
	s, _ := GetPath(v, "partitions")
	seq, err := Seq(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 {
		t.Fatalf("len = %d: %#v", len(seq), seq)
	}
	m, _ := Map(seq[1])
	if m["nodes"] != int64(4) {
		t.Errorf("gpu nodes = %v", m["nodes"])
	}
}

func TestComments(t *testing.T) {
	text := `
# top comment
key: value # trailing comment
other: 'has # inside'   # but this goes
`
	v := mustParse(t, text)
	m, _ := Map(v)
	if m["key"] != "value" {
		t.Errorf("key = %q", m["key"])
	}
	if m["other"] != "has # inside" {
		t.Errorf("other = %q", m["other"])
	}
}

func TestQuotedKeys(t *testing.T) {
	v := mustParse(t, "'weird: key': 1\n")
	m, _ := Map(v)
	if m["weird: key"] != int64(1) {
		t.Errorf("got %#v", m)
	}
}

func TestErrors(t *testing.T) {
	for _, bad := range []string{
		"a: 1\na: 2\n",       // duplicate key
		"a: 1\n  b: orphan:", // unexpected indentation under scalar value... (b treated as nested? a has value) -> error
		"- a\nb: 1\n",        // sequence then mapping at same level
		"key: 'unterminated\n",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestTypedAccessorErrors(t *testing.T) {
	if _, err := Map("notamap"); err == nil {
		t.Error("Map on scalar")
	}
	if _, err := Seq("notaseq"); err == nil {
		t.Error("Seq on scalar")
	}
	if _, err := Int("x"); err == nil {
		t.Error("Int on string")
	}
	if _, err := Bool("x"); err == nil {
		t.Error("Bool on string")
	}
	if _, err := Float("x"); err == nil {
		t.Error("Float on string")
	}
	if s, err := Str(int64(3)); err != nil || s != "3" {
		t.Errorf("Str(3) = %q, %v", s, err)
	}
	if f, err := Float(int64(3)); err != nil || f != 3.0 {
		t.Errorf("Float(3) = %v, %v", f, err)
	}
	if n, err := Int(4.0); err != nil || n != 4 {
		t.Errorf("Int(4.0) = %v, %v", n, err)
	}
	if _, err := Int(4.5); err == nil {
		t.Error("Int(4.5) should error")
	}
}

func TestKeysSorted(t *testing.T) {
	m := map[string]Value{"b": 1, "a": 2, "c": 3}
	got := Keys(m)
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Keys = %v", got)
	}
}

func TestRealisticConfig(t *testing.T) {
	// The shape of a post-processing plot config (paper §2.4).
	text := `
title: BabelStream Triad
x_axis:
  value: system
  sort: ascending
y_axis:
  value: triad_bw
  units: GB/s
filters:
  and:
    - [job_nnodes, ==, 1]
series: [programming_model]
`
	// Flow sequences on one line are not supported; the list above uses
	// flow syntax, so this should fail cleanly rather than mis-parse.
	if _, err := Parse(text); err == nil {
		v := mustParse(t, text)
		if _, err2 := GetPath(v, "x_axis.value"); err2 != nil {
			t.Errorf("config misparsed: %v", err2)
		}
	}
	// Block form of the same config must parse.
	block := `
title: BabelStream Triad
x_axis:
  value: system
  sort: ascending
y_axis:
  value: triad_bw
  units: GB/s
series:
  - programming_model
`
	v := mustParse(t, block)
	got, err := GetPath(v, "y_axis.units")
	if err != nil || got != "GB/s" {
		t.Errorf("units = %v, %v", got, err)
	}
}

func TestStrCoercions(t *testing.T) {
	cases := []struct {
		in   Value
		want string
	}{
		{int64(42), "42"},
		{3.5, "3.5"},
		{true, "true"},
		{false, "false"},
		{"plain", "plain"},
	}
	for _, c := range cases {
		got, err := Str(c.in)
		if err != nil || got != c.want {
			t.Errorf("Str(%v) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
	if _, err := Str(nil); err == nil {
		t.Error("Str(nil) accepted")
	}
	if _, err := Str([]Value{}); err == nil {
		t.Error("Str of a sequence accepted")
	}
}

func TestQuotedKeyForms(t *testing.T) {
	// Double-quoted keys with escapes, single-quoted with doubled quotes.
	v := mustParse(t, "\"tab\\tkey\": 1\n'it''s': 2\n")
	m, _ := Map(v)
	if m["tab\tkey"] != int64(1) {
		t.Errorf("double-quoted key lost: %#v", m)
	}
	if m["it's"] != int64(2) {
		t.Errorf("single-quoted key lost: %#v", m)
	}
}

func TestBoolTrueValue(t *testing.T) {
	b, err := Bool(true)
	if err != nil || !b {
		t.Errorf("Bool(true) = %v, %v", b, err)
	}
	f, err := Float(2.5)
	if err != nil || f != 2.5 {
		t.Errorf("Float(2.5) = %v, %v", f, err)
	}
}
