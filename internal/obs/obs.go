// Package obs is benchd's self-observability subsystem: the layer that
// turns the point-in-time telemetry registry into history, alerts, and
// evidence. A clock-injected sampler scrapes every registered metric
// (plus Go runtime stats) on an interval into bounded multi-resolution
// time-series rings; a declarative alert engine evaluates threshold,
// rate-of-change, and absence rules with for-duration hysteresis on
// each tick and publishes alert.fired / alert.resolved through the
// event bus; firings trigger rate-limited pprof heap+goroutine
// captures into a bounded ring; and the whole corpus persists under
// the daemon's data dir with the atomic tmp+fsync+rename pattern so a
// reboot serves pre-reboot history.
//
// The paper's automation principle applied to the benchmarker itself:
// a continuous-benchmarking daemon running unattended for weeks must
// detect its own regressions — ingest stalls, queue backlog, cache-hit
// collapse, GC pressure — without a human re-running curl /metrics.
package obs

import (
	"fmt"
	"log/slog"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

var (
	metricSamples = telemetry.DefaultRegistry.Counter(
		"obs_samples_total",
		"Self-telemetry sampler ticks completed.").With()
	metricSampleErrors = telemetry.DefaultRegistry.Counter(
		"obs_sample_errors_total",
		"Sampler ticks skipped by injected or real scrape failures.").With()
	metricSeries = telemetry.DefaultRegistry.Gauge(
		"obs_series",
		"Metric series with retained history.").With()
	metricAlertsFiring = telemetry.DefaultRegistry.Gauge(
		"obs_alerts_firing",
		"Alert rules currently in the firing state.").With()
	metricAlertsFired = telemetry.DefaultRegistry.Counter(
		"obs_alerts_fired_total",
		"Alert fire transitions published.").With()
	metricAlertsResolved = telemetry.DefaultRegistry.Counter(
		"obs_alerts_resolved_total",
		"Alert resolve transitions published, by reason.",
		"reason")
	metricHistoryFlushes = telemetry.DefaultRegistry.Counter(
		"obs_history_flushes_total",
		"History snapshots persisted.").With()
	metricHistoryFlushErrors = telemetry.DefaultRegistry.Counter(
		"obs_history_flush_errors_total",
		"History snapshot writes that failed (previous file kept).").With()
)

// Config sizes an Observer.
type Config struct {
	// Registry is the metrics source (default telemetry.DefaultRegistry).
	Registry *telemetry.Registry
	// Interval paces the sampler (default 10s).
	Interval time.Duration
	// RawCapacity is per-tier retained points per series (default 512).
	RawCapacity int
	// Tiers is the total resolution count including raw (default 3).
	Tiers int
	// Factor is the downsampling ratio between adjacent tiers
	// (default 10).
	Factor int
	// DataDir persists history and profiles when set ("" = in-memory
	// only; everything dies with the process).
	DataDir string
	// FlushEvery persists the history file every N samples in addition
	// to the final flush on Stop (default 30; <0 disables periodic
	// flushes).
	FlushEvery int
	// ProfileLimit bounds retained pprof artifacts (default 16).
	ProfileLimit int
	// ProfileCooldown rate-limits alert-triggered captures (default 1m).
	ProfileCooldown time.Duration
	// Publish receives alert lifecycle events (nil = alerts evaluate
	// but publish nowhere).
	Publish func(typ string, data map[string]string)
	// Logger receives sampler diagnostics (default slog.Default).
	Logger *slog.Logger
	// Now supplies sample timestamps (default time.Now; fixed in tests).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = telemetry.DefaultRegistry
	}
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.RawCapacity <= 0 {
		c.RawCapacity = 512
	}
	if c.Tiers <= 0 {
		c.Tiers = 3
	}
	if c.Factor <= 1 {
		c.Factor = 10
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 30
	}
	if c.ProfileLimit <= 0 {
		c.ProfileLimit = 16
	}
	if c.ProfileCooldown <= 0 {
		c.ProfileCooldown = time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats summarises the observer for healthz.
type Stats struct {
	Series     int       `json:"series"`
	Samples    uint64    `json:"samples"`
	LastSample time.Time `json:"last_sample,omitempty"`
	Rules      int       `json:"rules"`
	Firing     int       `json:"firing"`
	Profiles   int       `json:"profiles"`
}

// Observer is the self-telemetry subsystem: sampler, history, alert
// engine, and profile ring behind one lock.
type Observer struct {
	cfg         Config
	historyPath string

	mu      sync.Mutex
	series  map[string]*series
	samples uint64
	last    time.Time
	rules   []*armedRule
	nextID  int
	prof    *capturer

	loopWG   sync.WaitGroup
	loopStop chan struct{}
	started  bool
	stopped  bool
}

// New builds an Observer, restoring persisted history when DataDir is
// set. A corrupt history file is logged and skipped — history is an
// aid, never worth refusing to boot over.
func New(cfg Config) (*Observer, error) {
	cfg = cfg.withDefaults()
	o := &Observer{
		cfg:      cfg,
		series:   map[string]*series{},
		loopStop: make(chan struct{}),
	}
	profDir := ""
	if cfg.DataDir != "" {
		o.historyPath = filepath.Join(cfg.DataDir, HistoryFile)
		profDir = filepath.Join(cfg.DataDir, "profiles")
	}
	if err := o.loadHistory(); err != nil {
		cfg.Logger.Error("metric history unreadable, starting fresh", "error", err.Error())
	}
	prof, err := newCapturer(profDir, cfg.ProfileLimit, cfg.ProfileCooldown)
	if err != nil {
		return nil, err
	}
	o.prof = prof
	metricSeries.Set(float64(len(o.series)))
	return o, nil
}

// Start launches the sampler loop. Idempotent.
func (o *Observer) Start() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.started || o.stopped {
		return
	}
	o.started = true
	o.loopWG.Add(1)
	go o.loop()
}

func (o *Observer) loop() {
	defer o.loopWG.Done()
	t := time.NewTicker(o.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-o.loopStop:
			return
		case <-t.C:
			if err := o.Sample(o.cfg.Now()); err != nil {
				o.cfg.Logger.Warn("sample tick skipped", "error", err.Error())
			}
		}
	}
}

// Stop halts the sampler and flushes the history file. Idempotent; safe
// before Start.
func (o *Observer) Stop() {
	o.mu.Lock()
	if o.stopped {
		o.mu.Unlock()
		return
	}
	o.stopped = true
	o.mu.Unlock()
	close(o.loopStop)
	o.loopWG.Wait()
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.saveHistory(); err != nil {
		o.cfg.Logger.Error("final history flush failed", "error", err.Error())
	}
}

// Sample runs one tick: scrape the registry and runtime, append to
// every series ring, evaluate the alert rules, and periodically flush
// history. Tests drive it directly with an injected clock. The
// "obs.sample" injection point fires before any state changes, so a
// failed tick observed nothing and changed nothing — alert hysteresis
// simply sees a longer gap between evaluations.
func (o *Observer) Sample(now time.Time) error {
	if err := faultinject.Fire("obs.sample"); err != nil {
		metricSampleErrors.Inc()
		return fmt.Errorf("obs: sample: %w", err)
	}
	samples := o.cfg.Registry.Snapshot()
	scrape := make(map[string]scraped, len(samples)+8)
	for _, s := range samples {
		scrape[s.Key()] = scraped{kind: s.Kind, value: s.Value}
	}
	for key, s := range runtimeSamples() {
		scrape[key] = s
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	for key, sc := range scrape {
		ser, ok := o.series[key]
		if !ok {
			ser = newSeries(sc.kind, o.cfg.RawCapacity, o.cfg.Tiers)
			o.series[key] = ser
		}
		ser.add(now, sc.value, o.cfg.Factor)
	}
	o.samples++
	o.last = now
	metricSamples.Inc()
	metricSeries.Set(float64(len(o.series)))

	o.evaluateLocked(now, scrape)

	if o.cfg.FlushEvery > 0 && o.samples%uint64(o.cfg.FlushEvery) == 0 {
		if err := o.saveHistory(); err != nil {
			o.cfg.Logger.Warn("history flush failed (previous snapshot kept)", "error", err.Error())
		}
	}
	return nil
}

type scraped struct {
	kind  string
	value float64
}

// runtimeSamples scrapes the Go runtime: heap, GC, goroutines, and
// scheduling latency — the daemon-health signals the registry's
// application metrics don't carry.
func runtimeSamples() map[string]scraped {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := map[string]scraped{
		"go_goroutines":             {telemetry.SampleGauge, float64(runtime.NumGoroutine())},
		"go_heap_alloc_bytes":       {telemetry.SampleGauge, float64(ms.HeapAlloc)},
		"go_heap_objects":           {telemetry.SampleGauge, float64(ms.HeapObjects)},
		"go_gc_cycles_total":        {telemetry.SampleCounter, float64(ms.NumGC)},
		"go_gc_pause_total_seconds": {telemetry.SampleCounter, float64(ms.PauseTotalNs) / 1e9},
	}
	if p50, ok := schedLatencyP50(); ok {
		out["go_sched_latency_p50_seconds"] = scraped{telemetry.SampleGauge, p50}
	}
	return out
}

// schedLatencyP50 approximates the median goroutine scheduling latency
// from the runtime's histogram — the earliest visible symptom of an
// oversubscribed worker pool.
func schedLatencyP50() (float64, bool) {
	s := []metrics.Sample{{Name: "/sched/latencies:seconds"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64Histogram {
		return 0, false
	}
	h := s[0].Value.Float64Histogram()
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, false
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum*2 >= total {
			// Bucket i spans Buckets[i]..Buckets[i+1]; report its upper
			// edge (the last bucket's upper edge may be +Inf — use lower).
			hi := h.Buckets[i+1]
			if hi > 1e9 || hi != hi { // +Inf or NaN guard
				hi = h.Buckets[i]
			}
			return hi, true
		}
	}
	return 0, false
}

// evaluateLocked runs every rule against this tick's scrape and
// publishes state transitions. Caller holds o.mu.
func (o *Observer) evaluateLocked(now time.Time, scrape map[string]scraped) {
	firing := 0
	for _, ar := range o.rules {
		sc, present := scrape[ar.Metric]
		breaching := ar.evaluate(now, present, sc.value, o.series[ar.Metric], o.cfg.Interval)
		fired, resolved := ar.transition(now, breaching)
		if fired {
			metricAlertsFired.Inc()
			data := o.alertEventData(ar)
			// The capture happens before the event publishes so the fired
			// event can carry the profile ids it produced.
			if ids, err := o.prof.capture(now, ar.ID, ar.Metric); err != nil {
				o.cfg.Logger.Warn("alert profile capture failed", "alert", ar.ID, "error", err.Error())
			} else if len(ids) > 0 {
				for i, id := range ids {
					data[fmt.Sprintf("profile_%d", i)] = id
				}
			}
			o.cfg.Logger.Warn("alert fired", "alert", ar.ID, "metric", ar.Metric,
				"kind", ar.Kind, "value", ar.lastValue, "limit", ar.Value)
			o.publish(EventFired, data)
		}
		if resolved {
			metricAlertsResolved.With(ResolveRecovered).Inc()
			data := o.alertEventData(ar)
			data["reason"] = ResolveRecovered
			o.cfg.Logger.Info("alert resolved", "alert", ar.ID, "metric", ar.Metric)
			o.publish(EventResolved, data)
		}
		if ar.state == StateFiring {
			firing++
		}
	}
	metricAlertsFiring.Set(float64(firing))
}

// The event type names live in eventbus, but obs must not import the
// bus (the service layer owns that wiring); these mirror the constants
// and the service's tests pin them equal.
const (
	EventFired    = "alert.fired"
	EventResolved = "alert.resolved"
)

func (o *Observer) publish(typ string, data map[string]string) {
	if o.cfg.Publish != nil {
		o.cfg.Publish(typ, data)
	}
}

func (o *Observer) alertEventData(ar *armedRule) map[string]string {
	data := map[string]string{
		"alert_id": ar.ID,
		"metric":   ar.Metric,
		"kind":     ar.Kind,
		"state":    ar.state,
		"value":    fmt.Sprintf("%g", ar.lastValue),
		"limit":    fmt.Sprintf("%g", ar.Value),
		"since":    ar.since.Format(time.RFC3339Nano),
	}
	if ar.Name != "" {
		data["name"] = ar.Name
	}
	if ar.Op != "" {
		data["op"] = ar.Op
	}
	return data
}

// AddRule validates and arms a rule, assigning its id.
func (o *Observer) AddRule(r Rule) (RuleStatus, error) {
	if err := r.Validate(); err != nil {
		return RuleStatus{}, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.nextID++
	r.ID = fmt.Sprintf("alert-%06d", o.nextID)
	ar := &armedRule{Rule: r, state: StateOK}
	o.rules = append(o.rules, ar)
	return ar.status(), nil
}

// RemoveRule disarms a rule. A firing rule publishes a final resolved
// event (reason rule_deleted) so watchers never see a fire without a
// matching resolve.
func (o *Observer) RemoveRule(id string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i, ar := range o.rules {
		if ar.ID != id {
			continue
		}
		o.rules = append(o.rules[:i], o.rules[i+1:]...)
		if ar.state == StateFiring {
			metricAlertsResolved.With(ResolveDeleted).Inc()
			data := o.alertEventData(ar)
			data["reason"] = ResolveDeleted
			o.publish(EventResolved, data)
		}
		return true
	}
	return false
}

// Rules returns every rule's status, in creation order.
func (o *Observer) Rules() []RuleStatus {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]RuleStatus, len(o.rules))
	for i, ar := range o.rules {
		out[i] = ar.status()
	}
	return out
}

// Rule returns one rule's status.
func (o *Observer) Rule(id string) (RuleStatus, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, ar := range o.rules {
		if ar.ID == id {
			return ar.status(), true
		}
	}
	return RuleStatus{}, false
}

// RestoreRules re-arms persisted rules at boot, preserving their ids
// and advancing the id counter past them. Evaluation state resets to
// ok — a condition that still holds will re-fire after its For window,
// which is the honest behaviour for a daemon that was just down.
func (o *Observer) RestoreRules(rules []Rule) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, r := range rules {
		if r.Validate() != nil || r.ID == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(r.ID, "alert-%d", &n); err == nil && n > o.nextID {
			o.nextID = n
		}
		o.rules = append(o.rules, &armedRule{Rule: r, state: StateOK})
	}
}

// SnapshotRules returns the bare rules for persistence.
func (o *Observer) SnapshotRules() []Rule {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Rule, len(o.rules))
	for i, ar := range o.rules {
		out[i] = ar.Rule
	}
	return out
}

// ResolveFiring publishes alert.resolved (with the given reason) for
// every firing rule and returns how many it resolved — the graceful-
// shutdown path, so a watcher's last view of every alert is terminal.
func (o *Observer) ResolveFiring(reason string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, ar := range o.rules {
		if ar.state != StateFiring {
			continue
		}
		ar.state = StateOK
		ar.since = o.cfg.Now()
		metricAlertsResolved.With(reason).Inc()
		data := o.alertEventData(ar)
		data["reason"] = reason
		o.publish(EventResolved, data)
		n++
	}
	metricAlertsFiring.Set(0)
	return n
}

// Names lists every series with retained history, sorted.
func (o *Observer) Names() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.series))
	for k := range o.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// History returns one series' points at or after since, downsampled to
// the tier whose resolution best matches step (0 = finest available),
// plus the actual step of the tier served.
func (o *Observer) History(name string, since time.Time, step time.Duration) ([]Point, time.Duration, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ser, ok := o.series[name]
	if !ok {
		return nil, 0, false
	}
	pts, tier := ser.window(since, step, o.cfg.Interval, o.cfg.Factor)
	actual := o.cfg.Interval
	for i := 0; i < tier; i++ {
		actual *= time.Duration(o.cfg.Factor)
	}
	return pts, actual, true
}

// Latest returns a series' newest raw sample.
func (o *Observer) Latest(name string) (Point, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ser, ok := o.series[name]
	if !ok {
		return Point{}, false
	}
	return ser.latest()
}

// Profiles lists the retained pprof artifacts, oldest first.
func (o *Observer) Profiles() []ProfileInfo {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.prof.list()
}

// Profile returns one artifact's metadata and bytes.
func (o *Observer) Profile(id string) (ProfileInfo, []byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.prof.get(id)
}

// Stats summarises the observer for healthz.
func (o *Observer) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := Stats{
		Series:     len(o.series),
		Samples:    o.samples,
		LastSample: o.last,
		Rules:      len(o.rules),
		Profiles:   len(o.prof.infos),
	}
	for _, ar := range o.rules {
		if ar.state == StateFiring {
			st.Firing++
		}
	}
	return st
}

// Interval exposes the sampler's configured pace.
func (o *Observer) Interval() time.Duration { return o.cfg.Interval }
