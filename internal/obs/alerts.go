package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// The alert-rules engine. Rules are declarative — threshold,
// rate-of-change, or absence over one metric series — and evaluated on
// every sampler tick against the freshly scraped snapshot. Hysteresis
// comes from the For duration: a breach must hold continuously that
// long before the rule fires, so a metric flapping across its threshold
// between ticks never spams the bus. Fired and resolved transitions
// publish typed events exactly once per transition; a skipped tick (an
// injected obs.sample fault, a paused daemon) simply delays the next
// evaluation and can never duplicate an event.

// Rule kinds.
const (
	KindThreshold = "threshold" // latest value Op Value
	KindRate      = "rate"      // per-second change over Window Op Value
	KindAbsence   = "absence"   // series missing from the latest scrape
)

// Comparison operators for threshold and rate rules.
const (
	OpGT = "gt"
	OpGE = "ge"
	OpLT = "lt"
	OpLE = "le"
)

// Alert states.
const (
	StateOK      = "ok"
	StatePending = "pending" // breaching, waiting out For
	StateFiring  = "firing"
)

// Resolution reasons carried on alert.resolved events.
const (
	ResolveRecovered = "recovered"
	ResolveShutdown  = "shutdown"
	ResolveDeleted   = "rule_deleted"
)

// Duration marshals as a Go duration string ("30s", "5m") in JSON,
// matching the schedule API's convention.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("obs: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// Rule is one declarative alert. Metric is the canonical series key as
// served by /v1/metrics/history — the bare family name, or
// name{label="value",...} for labelled series.
type Rule struct {
	ID     string   `json:"id,omitempty"` // assigned by the engine
	Name   string   `json:"name,omitempty"`
	Metric string   `json:"metric"`
	Kind   string   `json:"kind"`
	Op     string   `json:"op,omitempty"`     // threshold, rate
	Value  float64  `json:"value"`            // threshold, rate limit (per second)
	For    Duration `json:"for,omitempty"`    // hysteresis: breach must hold this long
	Window Duration `json:"window,omitempty"` // rate lookback (default 10 sample intervals)
}

// Validate rejects malformed rules before they enter the engine.
func (r Rule) Validate() error {
	if r.Metric == "" {
		return fmt.Errorf("obs: rule needs a metric")
	}
	switch r.Kind {
	case KindThreshold, KindRate:
		switch r.Op {
		case OpGT, OpGE, OpLT, OpLE:
		default:
			return fmt.Errorf("obs: rule kind %q needs op gt|ge|lt|le, got %q", r.Kind, r.Op)
		}
	case KindAbsence:
		if r.Op != "" {
			return fmt.Errorf("obs: absence rules take no op")
		}
	default:
		return fmt.Errorf("obs: unknown rule kind %q (kinds: threshold, rate, absence)", r.Kind)
	}
	if r.For < 0 || r.Window < 0 {
		return fmt.Errorf("obs: for and window must be non-negative")
	}
	return nil
}

func compare(op string, v, limit float64) bool {
	switch op {
	case OpGT:
		return v > limit
	case OpGE:
		return v >= limit
	case OpLT:
		return v < limit
	case OpLE:
		return v <= limit
	}
	return false
}

// RuleStatus is a rule plus its live evaluation state, as served by
// GET /v1/alerts.
type RuleStatus struct {
	Rule
	State     string    `json:"state"`
	Since     time.Time `json:"since,omitempty"`      // current state entered
	LastValue float64   `json:"last_value"`           // threshold/absence: latest sample; rate: computed rate
	LastEval  time.Time `json:"last_eval,omitempty"`  // newest evaluated tick
	Fires     int       `json:"fires"`                // lifetime fire count
	LastFired time.Time `json:"last_fired,omitempty"` // newest transition to firing
}

// armedRule is a rule plus mutable engine state. The Observer's lock
// guards it.
type armedRule struct {
	Rule
	state       string
	since       time.Time // when the current state was entered
	breachSince time.Time // continuous-breach start (pending hysteresis)
	lastValue   float64
	lastEval    time.Time
	fires       int
	lastFired   time.Time
}

func (ar *armedRule) status() RuleStatus {
	return RuleStatus{
		Rule:      ar.Rule,
		State:     ar.state,
		Since:     ar.since,
		LastValue: ar.lastValue,
		LastEval:  ar.lastEval,
		Fires:     ar.fires,
		LastFired: ar.lastFired,
	}
}

// evaluate computes breach-or-not for one tick. present/value describe
// the rule's metric in the current scrape; hist is the metric's series
// (may be nil early in life) for rate lookback.
func (ar *armedRule) evaluate(now time.Time, present bool, value float64, hist *series, baseStep time.Duration) bool {
	switch ar.Kind {
	case KindAbsence:
		ar.lastValue = value
		return !present
	case KindThreshold:
		ar.lastValue = value
		return present && compare(ar.Op, value, ar.Value)
	case KindRate:
		if !present || hist == nil {
			return false
		}
		window := time.Duration(ar.Window)
		if window <= 0 {
			window = 10 * baseStep
		}
		pts, _ := hist.window(now.Add(-window), 0, baseStep, 1)
		if len(pts) < 2 {
			return false
		}
		first, last := pts[0], pts[len(pts)-1]
		dt := last.Time.Sub(first.Time).Seconds()
		if dt <= 0 {
			return false
		}
		rate := (last.Last - first.Last) / dt
		ar.lastValue = rate
		return compare(ar.Op, rate, ar.Value)
	}
	return false
}

// transition advances the rule's state machine for one evaluated tick
// and reports whether it fired or resolved on this tick.
func (ar *armedRule) transition(now time.Time, breaching bool) (fired, resolved bool) {
	ar.lastEval = now
	switch {
	case breaching && ar.state == StateOK:
		ar.breachSince = now
		if ar.For == 0 {
			ar.state = StateFiring
			ar.since = now
			ar.fires++
			ar.lastFired = now
			return true, false
		}
		ar.state = StatePending
		ar.since = now
	case breaching && ar.state == StatePending:
		if now.Sub(ar.breachSince) >= time.Duration(ar.For) {
			ar.state = StateFiring
			ar.since = now
			ar.fires++
			ar.lastFired = now
			return true, false
		}
	case !breaching && ar.state == StatePending:
		ar.state = StateOK
		ar.since = now
	case !breaching && ar.state == StateFiring:
		ar.state = StateOK
		ar.since = now
		return false, true
	}
	return false, false
}
