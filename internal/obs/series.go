package obs

import "time"

// The multi-resolution time-series ring. Every sampled series owns one:
// tier 0 holds raw samples at the sampler interval, and each coarser
// tier holds buckets of Factor points from the tier below, downsampled
// to (min, max, mean, last, count). Memory is bounded by construction —
// capacity × tiers points per series — while the coarsest tier covers
// Factor^tiers × capacity sample intervals of history (at the 10s
// default: raw ≈ 1.4h, tier 1 ≈ 14h, tier 2 ≈ 6 days).

// Point is one retained observation: a raw sample (Count == 1,
// Min == Max == Mean == Last) or a downsampled bucket. Time is the
// moment of the newest raw sample the point covers.
type Point struct {
	Time  time.Time `json:"t"`
	Min   float64   `json:"min"`
	Max   float64   `json:"max"`
	Mean  float64   `json:"mean"`
	Last  float64   `json:"last"`
	Count int       `json:"count"`
}

// rawPoint wraps a single observation as a Point.
func rawPoint(t time.Time, v float64) Point {
	return Point{Time: t, Min: v, Max: v, Mean: v, Last: v, Count: 1}
}

// accum merges consecutive points into the next coarser bucket.
type accum struct {
	pts int // points absorbed (not raw count: tier cascade feeds buckets)
	p   Point
}

func (a *accum) add(p Point) {
	if a.pts == 0 {
		a.p = p
		a.pts = 1
		return
	}
	if p.Min < a.p.Min {
		a.p.Min = p.Min
	}
	if p.Max > a.p.Max {
		a.p.Max = p.Max
	}
	// Means merge weighted by raw-sample count, so a bucket's mean is
	// exactly the mean of every raw sample it covers.
	total := a.p.Count + p.Count
	a.p.Mean = (a.p.Mean*float64(a.p.Count) + p.Mean*float64(p.Count)) / float64(total)
	a.p.Count = total
	a.p.Last = p.Last
	a.p.Time = p.Time
	a.pts++
}

// ring is one tier's fixed-capacity point buffer.
type ring struct {
	buf  []Point
	head int // index of oldest point
	n    int
}

func newRing(capacity int) *ring { return &ring{buf: make([]Point, capacity)} }

func (r *ring) push(p Point) {
	if r.n == len(r.buf) {
		r.buf[r.head] = p
		r.head = (r.head + 1) % len(r.buf)
		return
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

// points returns the retained points oldest-first.
func (r *ring) points() []Point {
	out := make([]Point, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

func (r *ring) oldest() (Point, bool) {
	if r.n == 0 {
		return Point{}, false
	}
	return r.buf[r.head], true
}

// series is one metric's multi-resolution history. Not safe for
// concurrent use; the Observer serialises access.
type series struct {
	kind  string
	tiers []*ring
	accs  []accum // accs[i] feeds tiers[i+1]
}

func newSeries(kind string, capacity, tiers int) *series {
	s := &series{kind: kind}
	for i := 0; i < tiers; i++ {
		s.tiers = append(s.tiers, newRing(capacity))
	}
	s.accs = make([]accum, tiers-1)
	return s
}

// add records one raw sample and cascades full buckets upward.
func (s *series) add(t time.Time, v float64, factor int) {
	p := rawPoint(t, v)
	s.tiers[0].push(p)
	for i := range s.accs {
		s.accs[i].add(p)
		if s.accs[i].pts < factor {
			return
		}
		p = s.accs[i].p
		s.accs[i] = accum{}
		s.tiers[i+1].push(p)
	}
}

// latest returns the newest raw sample.
func (s *series) latest() (Point, bool) {
	r := s.tiers[0]
	if r.n == 0 {
		return Point{}, false
	}
	return r.buf[(r.head+r.n-1)%len(r.buf)], true
}

// window picks the tier for a query: the finest tier whose nominal step
// is at least reqStep, then coarsened further until the tier's history
// reaches back to since (a coarser tier always covers at least as much
// time). Returns the selected tier's points at or after since plus the
// tier index, falling back toward finer tiers when the chosen one is
// still empty (early life: coarse buckets take Factor samples to form).
func (s *series) window(since time.Time, reqStep, baseStep time.Duration, factor int) ([]Point, int) {
	idx := 0
	if reqStep > 0 {
		step := baseStep
		for idx < len(s.tiers)-1 && step < reqStep {
			step *= time.Duration(factor)
			idx++
		}
	}
	for idx < len(s.tiers)-1 {
		old, ok := s.tiers[idx].oldest()
		if ok && !old.Time.After(since) {
			break // this tier reaches back far enough
		}
		coarse, cok := s.tiers[idx+1].oldest()
		if !cok {
			break // nothing coarser exists yet
		}
		if ok && !coarse.Time.Before(old.Time) {
			break // coarser tier reaches no further back (nothing evicted yet)
		}
		idx++
	}
	for idx > 0 && s.tiers[idx].n == 0 {
		idx--
	}
	pts := s.tiers[idx].points()
	cut := 0
	for cut < len(pts) && pts[cut].Time.Before(since) {
		cut++
	}
	return pts[cut:], idx
}
