package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

// TestDownsamplingBracketsRaw is the property test at the heart of the
// multi-resolution ring: for any sequence of raw samples, every bucket
// in every coarser tier must have Min ≤ Mean ≤ Max with Min/Max exactly
// the extrema of the raw samples it covers, Count the raw sample count,
// and the tier-wide weighted mean equal to the raw mean. Downsampling
// may lose resolution, never truth.
func TestDownsamplingBracketsRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const (
		n      = 1000
		factor = 10
		tiers  = 3
		bigCap = 100000 // capacity > n so nothing evicts and we can compare exactly
	)
	s := newSeries("gauge", bigCap, tiers)
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = rng.NormFloat64()*100 + 50
		s.add(t0.Add(time.Duration(i)*time.Second), raw[i], factor)
	}
	for tier := 1; tier < tiers; tier++ {
		per := 1
		for i := 0; i < tier; i++ {
			per *= factor
		}
		pts := s.tiers[tier].points()
		if want := n / per; len(pts) != want {
			t.Fatalf("tier %d: %d buckets, want %d", tier, len(pts), want)
		}
		for bi, p := range pts {
			chunk := raw[bi*per : (bi+1)*per]
			lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
			for _, v := range chunk {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
				sum += v
			}
			if p.Count != per {
				t.Fatalf("tier %d bucket %d: count=%d want %d", tier, bi, p.Count, per)
			}
			if p.Min != lo || p.Max != hi {
				t.Errorf("tier %d bucket %d: min/max=%g/%g want %g/%g", tier, bi, p.Min, p.Max, lo, hi)
			}
			if mean := sum / float64(per); math.Abs(p.Mean-mean) > 1e-9*math.Abs(mean) {
				t.Errorf("tier %d bucket %d: mean=%g want %g", tier, bi, p.Mean, mean)
			}
			if p.Min > p.Mean || p.Mean > p.Max {
				t.Errorf("tier %d bucket %d: mean %g outside [%g, %g]", tier, bi, p.Mean, p.Min, p.Max)
			}
			if p.Last != chunk[per-1] {
				t.Errorf("tier %d bucket %d: last=%g want %g", tier, bi, p.Last, chunk[per-1])
			}
		}
	}
}

func TestRingEvictsOldestAndBoundsMemory(t *testing.T) {
	s := newSeries("gauge", 8, 3)
	for i := 0; i < 1000; i++ {
		s.add(t0.Add(time.Duration(i)*time.Second), float64(i), 10)
	}
	for tier, r := range s.tiers {
		if r.n > 8 {
			t.Fatalf("tier %d grew to %d points (cap 8)", tier, r.n)
		}
	}
	pts := s.tiers[0].points()
	if len(pts) != 8 {
		t.Fatalf("raw tier holds %d, want 8", len(pts))
	}
	// Newest 8 survive: 992..999.
	if pts[0].Last != 992 || pts[7].Last != 999 {
		t.Fatalf("raw window = [%g, %g], want [992, 999]", pts[0].Last, pts[7].Last)
	}
	if got, ok := s.latest(); !ok || got.Last != 999 {
		t.Fatalf("latest = %v, %v", got, ok)
	}
}

// TestWindowTierSelection: a query asking for coarse steps gets a
// coarse tier; a since inside the raw window gets raw; early life (no
// coarse buckets yet) falls back to the finest populated tier.
func TestWindowTierSelection(t *testing.T) {
	base := time.Second
	s := newSeries("gauge", 50, 3)
	for i := 0; i < 500; i++ {
		s.add(t0.Add(time.Duration(i)*base), float64(i), 10)
	}
	// Raw tier covers samples 450..499; asking within it stays raw.
	pts, tier := s.window(t0.Add(460*base), 0, base, 10)
	if tier != 0 {
		t.Fatalf("recent window served from tier %d, want 0", tier)
	}
	if len(pts) == 0 || pts[0].Time.Before(t0.Add(460*base)) {
		t.Fatalf("window returned points before since: %+v", pts[0])
	}
	// Asking for all history must climb: raw can't reach back to t0.
	pts, tier = s.window(t0, 0, base, 10)
	if tier == 0 {
		t.Fatalf("full-history window stayed on raw tier")
	}
	if len(pts) == 0 {
		t.Fatal("full-history window empty")
	}
	// An explicit coarse step requests the coarse tier directly.
	_, tier = s.window(t0.Add(490*base), 100*base, base, 10)
	if tier != 2 {
		t.Fatalf("step=100x served from tier %d, want 2", tier)
	}
	// Early life: only 3 samples, no coarse buckets formed yet.
	young := newSeries("gauge", 50, 3)
	for i := 0; i < 3; i++ {
		young.add(t0.Add(time.Duration(i)*base), float64(i), 10)
	}
	pts, tier = young.window(t0, 100*base, base, 10)
	if tier != 0 || len(pts) != 3 {
		t.Fatalf("young series served tier %d with %d points, want tier 0 with 3", tier, len(pts))
	}
}
