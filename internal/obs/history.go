package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faultinject"
)

// History persistence: the whole multi-resolution corpus serialises to
// one JSON file under the daemon's data dir, replaced with the same
// atomic tmp + fsync + rename pattern the segment manifest and schedule
// registry use. A crash at any instant leaves either the previous or
// the new file, both complete — never a torn one — so a rebooted daemon
// serves pre-crash metric history from its first request on.

// HistoryFile is the history snapshot's on-disk name under the
// observer's data dir.
const HistoryFile = "metrics-history.json"

// historySnapshot is the persisted form.
type historySnapshot struct {
	Version   int                        `json:"version"`
	SavedAt   time.Time                  `json:"saved_at"`
	IntervalS float64                    `json:"interval_s"`
	Samples   uint64                     `json:"samples"`
	Series    map[string]persistedSeries `json:"series"`
}

type persistedSeries struct {
	Kind  string    `json:"kind"`
	Tiers [][]Point `json:"tiers"`
}

// AtomicWrite replaces path with data via tmp + fsync + rename and a
// directory sync, the same durability pattern as the segment manifest.
func AtomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// saveHistory writes the current corpus. The "obs.historywrite"
// injection point fires before any bytes move, so a failed save leaves
// the previous snapshot fully intact.
func (o *Observer) saveHistory() error {
	if o.historyPath == "" {
		return nil
	}
	if err := faultinject.Fire("obs.historywrite"); err != nil {
		metricHistoryFlushErrors.Inc()
		return fmt.Errorf("obs: history: %w", err)
	}
	snap := historySnapshot{
		Version:   1,
		SavedAt:   o.cfg.Now(),
		IntervalS: o.cfg.Interval.Seconds(),
		Samples:   o.samples,
		Series:    map[string]persistedSeries{},
	}
	for key, s := range o.series {
		ps := persistedSeries{Kind: s.kind}
		for _, tier := range s.tiers {
			ps.Tiers = append(ps.Tiers, tier.points())
		}
		// Partial downsampling accumulators are deliberately dropped:
		// after a reboot the first coarse bucket simply covers fewer raw
		// samples. Raw history (tier 0) loses nothing.
		snap.Series[key] = ps
	}
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		metricHistoryFlushErrors.Inc()
		return fmt.Errorf("obs: history: %w", err)
	}
	if err := AtomicWrite(o.historyPath, append(data, '\n')); err != nil {
		metricHistoryFlushErrors.Inc()
		return fmt.Errorf("obs: history: %w", err)
	}
	metricHistoryFlushes.Inc()
	return nil
}

// LoadHistory parses a persisted history snapshot. Exposed so harnesses
// (the chaos soak) can assert a crash never left a torn file.
func LoadHistory(path string) (map[string][][]Point, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var snap historySnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, 0, fmt.Errorf("obs: history: parse %s: %w", path, err)
	}
	out := make(map[string][][]Point, len(snap.Series))
	for key, ps := range snap.Series {
		out[key] = ps.Tiers
	}
	return out, snap.Samples, nil
}

// loadHistory restores the corpus at boot. A missing file is an empty
// history; a corrupt one is surfaced to the caller (the daemon logs and
// starts fresh rather than refusing to boot — history is an aid, not
// the source of truth).
func (o *Observer) loadHistory() error {
	if o.historyPath == "" {
		return nil
	}
	data, err := os.ReadFile(o.historyPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("obs: history: %w", err)
	}
	var snap historySnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("obs: history: parse %s: %w", o.historyPath, err)
	}
	for key, ps := range snap.Series {
		s := newSeries(ps.Kind, o.cfg.RawCapacity, o.cfg.Tiers)
		for i, pts := range ps.Tiers {
			if i >= len(s.tiers) {
				break
			}
			// Re-push oldest-first; a shrunk capacity keeps the newest
			// points, exactly like live eviction would.
			for _, p := range pts {
				s.tiers[i].push(p)
			}
		}
		o.series[key] = s
	}
	o.samples = snap.Samples
	return nil
}
