package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

func loadFaults(t *testing.T, seed int64, schedule string) {
	t.Helper()
	rules, err := faultinject.ParseSchedule(schedule)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Load(seed, rules); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
}

// testObserver builds an Observer over its own registry (so assertions
// see exactly the gauges the test sets) with the sampler loop never
// started — ticks are driven through Sample with an explicit clock.
func testObserver(t *testing.T, dir string, mutate func(*Config)) (*Observer, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg := Config{
		Registry:    reg,
		Interval:    time.Second,
		RawCapacity: 64,
		Tiers:       3,
		Factor:      4,
		DataDir:     dir,
		FlushEvery:  -1, // explicit flushes only, unless the test opts in
	}
	if mutate != nil {
		mutate(&cfg)
	}
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o, reg
}

func TestSamplerScrapesRegistryAndRuntime(t *testing.T) {
	o, reg := testObserver(t, "", nil)
	g := reg.Gauge("test_depth", "").With()
	c := reg.Counter("test_ops_total", "", "kind")
	g.Set(7)
	c.With("a").Inc()
	if err := o.Sample(t0); err != nil {
		t.Fatal(err)
	}
	if p, ok := o.Latest("test_depth"); !ok || p.Last != 7 {
		t.Fatalf("test_depth latest = %+v, %v", p, ok)
	}
	if _, ok := o.Latest(`test_ops_total{kind="a"}`); !ok {
		t.Fatalf("labelled counter series missing; have %v", o.Names())
	}
	// Runtime stats ride every scrape.
	for _, name := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_cycles_total"} {
		if _, ok := o.Latest(name); !ok {
			t.Errorf("runtime series %s missing", name)
		}
	}
	if st := o.Stats(); st.Samples != 1 || st.Series == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHistoryPersistsAcrossReboot is the acceptance-critical property:
// sample, stop (flushing), build a new Observer over the same data dir,
// and the pre-reboot points are served.
func TestHistoryPersistsAcrossReboot(t *testing.T) {
	dir := t.TempDir()
	o, reg := testObserver(t, dir, nil)
	g := reg.Gauge("test_depth", "").With()
	now := t0
	for i := 0; i < 20; i++ {
		g.Set(float64(i))
		if err := o.Sample(now); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second)
	}
	o.Stop() // final flush

	o2, _ := testObserver(t, dir, nil)
	pts, step, ok := o2.History("test_depth", time.Time{}, 0)
	if !ok {
		t.Fatalf("rebooted observer lost test_depth; have %v", o2.Names())
	}
	if len(pts) != 20 {
		t.Fatalf("rebooted history has %d raw points, want 20", len(pts))
	}
	if step != time.Second {
		t.Fatalf("step = %v, want 1s", step)
	}
	if pts[0].Last != 0 || pts[19].Last != 19 {
		t.Fatalf("history window [%g, %g], want [0, 19]", pts[0].Last, pts[19].Last)
	}
	// Downsampled tiers survive too (factor 4: 20 raw → 5 tier-1 buckets).
	if tiers, samples, err := LoadHistory(filepath.Join(dir, HistoryFile)); err != nil {
		t.Fatal(err)
	} else if samples != 20 || len(tiers["test_depth"][1]) != 5 {
		t.Fatalf("persisted samples=%d tier1=%d, want 20/5", samples, len(tiers["test_depth"][1]))
	}
	o2.Stop()
}

func TestCorruptHistoryStartsFresh(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, HistoryFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	o, _ := testObserver(t, dir, nil) // must not fail New
	if names := o.Names(); len(names) != 0 {
		t.Fatalf("corrupt history produced series %v", names)
	}
}

func TestHistoryWriteFaultKeepsPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	o, reg := testObserver(t, dir, nil)
	reg.Gauge("test_depth", "").With().Set(1)
	if err := o.Sample(t0); err != nil {
		t.Fatal(err)
	}
	if err := o.saveHistory(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, HistoryFile))
	if err != nil {
		t.Fatal(err)
	}
	loadFaults(t, 1, "obs.historywrite:error:times=1")
	if err := o.Sample(t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := o.saveHistory(); err == nil {
		t.Fatal("injected history-write fault not surfaced")
	}
	after, err := os.ReadFile(filepath.Join(dir, HistoryFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed flush modified the on-disk snapshot")
	}
	// Next flush (fault exhausted) succeeds.
	if err := o.saveHistory(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFaultSkipsTickWithoutStateChange(t *testing.T) {
	o, reg := testObserver(t, "", nil)
	reg.Gauge("test_depth", "").With().Set(1)
	loadFaults(t, 1, "obs.sample:error:times=1")
	if err := o.Sample(t0); err == nil {
		t.Fatal("injected sample fault not surfaced")
	}
	if st := o.Stats(); st.Samples != 0 || st.Series != 0 {
		t.Fatalf("failed tick mutated state: %+v", st)
	}
	if err := o.Sample(t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.Samples != 1 {
		t.Fatalf("recovery tick not recorded: %+v", st)
	}
}

// alertHarness arms one always-firing threshold rule and collects the
// events the observer publishes.
type alertHarness struct {
	events []string // "type reason" lines, in publish order
	data   []map[string]string
}

func (h *alertHarness) publish(typ string, data map[string]string) {
	h.events = append(h.events, typ)
	h.data = append(h.data, data)
}

func TestAlertLifecyclePublishesAndProfiles(t *testing.T) {
	h := &alertHarness{}
	o, reg := testObserver(t, t.TempDir(), func(c *Config) {
		c.Publish = h.publish
		c.ProfileCooldown = time.Millisecond
	})
	g := reg.Gauge("test_depth", "").With()
	st, err := o.AddRule(Rule{Metric: "test_depth", Kind: KindThreshold, Op: OpGT, Value: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != StateOK {
		t.Fatalf("new rule status = %+v", st)
	}

	now := t0
	g.Set(5)
	o.Sample(now) // below threshold: nothing
	if len(h.events) != 0 {
		t.Fatalf("events before breach: %v", h.events)
	}
	g.Set(50)
	now = now.Add(time.Second)
	o.Sample(now) // breach, For=0: fires with profiles attached
	if len(h.events) != 1 || h.events[0] != EventFired {
		t.Fatalf("events after breach = %v", h.events)
	}
	if h.data[0]["alert_id"] != st.ID || h.data[0]["metric"] != "test_depth" {
		t.Fatalf("fired payload = %v", h.data[0])
	}
	if h.data[0]["profile_0"] == "" {
		t.Fatalf("fired event carries no profile id: %v", h.data[0])
	}
	profs := o.Profiles()
	if len(profs) != 2 { // heap + goroutine
		t.Fatalf("%d profiles captured, want 2", len(profs))
	}
	info, data, err := o.Profile(profs[0].ID)
	if err != nil || len(data) == 0 || info.AlertID != st.ID {
		t.Fatalf("profile fetch: info=%+v len=%d err=%v", info, len(data), err)
	}

	now = now.Add(time.Second)
	o.Sample(now) // still breaching: no duplicate fire
	if len(h.events) != 1 {
		t.Fatalf("steady firing republished: %v", h.events)
	}
	g.Set(1)
	now = now.Add(time.Second)
	o.Sample(now) // recovered: resolves once
	if len(h.events) != 2 || h.events[1] != EventResolved {
		t.Fatalf("events after recovery = %v", h.events)
	}
	if h.data[1]["reason"] != ResolveRecovered {
		t.Fatalf("resolve reason = %q", h.data[1]["reason"])
	}
}

func TestProfileCooldownAndEviction(t *testing.T) {
	o, _ := testObserver(t, "", func(c *Config) {
		c.ProfileCooldown = time.Hour
		c.ProfileLimit = 3
	})
	ids, err := o.prof.capture(t0, "alert-1", "m")
	if err != nil || len(ids) != 2 {
		t.Fatalf("first capture: ids=%v err=%v", ids, err)
	}
	// Within cooldown: skipped silently.
	ids, err = o.prof.capture(t0.Add(time.Minute), "alert-1", "m")
	if err != nil || ids != nil {
		t.Fatalf("cooldown capture: ids=%v err=%v", ids, err)
	}
	// Past cooldown: captures, then evicts down to the limit.
	ids, err = o.prof.capture(t0.Add(2*time.Hour), "alert-1", "m")
	if err != nil || len(ids) != 2 {
		t.Fatalf("post-cooldown capture: ids=%v err=%v", ids, err)
	}
	profs := o.Profiles()
	if len(profs) != 3 {
		t.Fatalf("retained %d profiles, want limit 3", len(profs))
	}
	if profs[0].ID >= profs[2].ID {
		t.Fatalf("eviction order wrong: %v", profs)
	}
}

func TestProfilesPersistAcrossReboot(t *testing.T) {
	dir := t.TempDir()
	o, _ := testObserver(t, dir, nil)
	if _, err := o.prof.capture(t0, "alert-1", "m"); err != nil {
		t.Fatal(err)
	}
	want := o.Profiles()
	o2, _ := testObserver(t, dir, nil)
	got := o2.Profiles()
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("rebooted profiles = %d, want %d", len(got), len(want))
	}
	if _, data, err := o2.Profile(got[0].ID); err != nil || len(data) == 0 {
		t.Fatalf("rebooted profile unreadable: %v", err)
	}
	// Fresh captures continue the id sequence instead of colliding.
	ids, err := o2.prof.capture(t0.Add(time.Hour), "alert-2", "m")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == got[0].ID || !strings.HasPrefix(id, "prof-") {
			t.Fatalf("post-reboot id %q collides or malformed", id)
		}
	}
}

func TestProfileCaptureFaultDoesNotFailAlert(t *testing.T) {
	h := &alertHarness{}
	o, reg := testObserver(t, "", func(c *Config) { c.Publish = h.publish })
	reg.Gauge("test_depth", "").With().Set(99)
	if _, err := o.AddRule(Rule{Metric: "test_depth", Kind: KindThreshold, Op: OpGT, Value: 1}); err != nil {
		t.Fatal(err)
	}
	loadFaults(t, 1, "obs.profilecapture:error:times=2") // both kinds fail
	o.Sample(t0)
	if len(h.events) != 1 || h.events[0] != EventFired {
		t.Fatalf("alert did not fire through capture failure: %v", h.events)
	}
	if len(o.Profiles()) != 0 {
		t.Fatal("failed captures left artifacts")
	}
}

func TestRemoveFiringRulePublishesResolve(t *testing.T) {
	h := &alertHarness{}
	o, reg := testObserver(t, "", func(c *Config) { c.Publish = h.publish })
	reg.Gauge("test_depth", "").With().Set(99)
	st, _ := o.AddRule(Rule{Metric: "test_depth", Kind: KindThreshold, Op: OpGT, Value: 1})
	o.Sample(t0)
	if !o.RemoveRule(st.ID) {
		t.Fatal("remove failed")
	}
	if len(h.events) != 2 || h.events[1] != EventResolved || h.data[1]["reason"] != ResolveDeleted {
		t.Fatalf("events = %v, data = %v", h.events, h.data)
	}
	if o.RemoveRule(st.ID) {
		t.Fatal("double remove succeeded")
	}
}

func TestResolveFiringOnShutdown(t *testing.T) {
	h := &alertHarness{}
	o, reg := testObserver(t, "", func(c *Config) { c.Publish = h.publish })
	reg.Gauge("test_depth", "").With().Set(99)
	o.AddRule(Rule{Metric: "test_depth", Kind: KindThreshold, Op: OpGT, Value: 1})
	o.AddRule(Rule{Metric: "absent_metric", Kind: KindAbsence})
	o.Sample(t0)
	if n := o.ResolveFiring(ResolveShutdown); n != 2 {
		t.Fatalf("resolved %d rules, want 2", n)
	}
	resolves := 0
	for i, typ := range h.events {
		if typ == EventResolved {
			resolves++
			if h.data[i]["reason"] != ResolveShutdown {
				t.Fatalf("shutdown resolve reason = %q", h.data[i]["reason"])
			}
		}
	}
	if resolves != 2 {
		t.Fatalf("%d resolve events, want 2", resolves)
	}
	if n := o.ResolveFiring(ResolveShutdown); n != 0 {
		t.Fatalf("second ResolveFiring resolved %d", n)
	}
}

func TestRestoreRulesPreservesIDsAndCounter(t *testing.T) {
	o, _ := testObserver(t, "", nil)
	o.RestoreRules([]Rule{
		{ID: "alert-000007", Metric: "a", Kind: KindAbsence},
		{ID: "alert-000003", Metric: "b", Kind: KindThreshold, Op: OpGT, Value: 1},
		{ID: "bogus", Metric: "", Kind: "nope"}, // invalid: dropped
	})
	rules := o.Rules()
	if len(rules) != 2 {
		t.Fatalf("restored %d rules, want 2", len(rules))
	}
	st, err := o.AddRule(Rule{Metric: "c", Kind: KindAbsence})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "alert-000008" {
		t.Fatalf("post-restore id = %s, want alert-000008", st.ID)
	}
}
