package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// The auto-profiling hook: when an alert fires, the capturer snapshots
// the heap and goroutine pprof profiles — the two that explain the
// usual daemon pathologies (leaks, wedged workers) and cost no warm-up
// window — into a bounded on-disk ring. A cooldown rate-limits capture
// so a storm of firing rules cannot turn the profiler itself into the
// overload, and the ring evicts oldest-first so retention is bounded
// regardless of uptime.

var (
	metricProfilesCaptured = telemetry.DefaultRegistry.Counter(
		"obs_profiles_captured_total",
		"pprof snapshots captured by alert firings, by profile kind.",
		"kind")
	metricProfilesSkipped = telemetry.DefaultRegistry.Counter(
		"obs_profiles_skipped_total",
		"Alert firings that did not capture a profile, by reason (cooldown, error).",
		"reason")
)

// profileKinds are the pprof profiles captured per alert firing.
var profileKinds = []string{"heap", "goroutine"}

// ProfileInfo describes one captured artifact, as listed by
// GET /v1/profiles.
type ProfileInfo struct {
	ID      string    `json:"id"`   // e.g. prof-000003-heap
	Kind    string    `json:"kind"` // heap | goroutine
	AlertID string    `json:"alert_id"`
	Metric  string    `json:"metric"`
	Time    time.Time `json:"time"`
	Size    int       `json:"size_bytes"`
}

// profileIndexFile names the capturer's metadata index under its
// directory; it is replaced atomically so a crash mid-capture leaves a
// parseable index whose entries all reference complete artifacts.
const profileIndexFile = "profiles.json"

// capturer owns the profile ring. The Observer's lock serialises
// captures; fetches take the capturer's own snapshot under that lock
// via the Observer.
type capturer struct {
	dir      string // "" = memory-only (no persistence)
	limit    int    // max retained artifacts
	cooldown time.Duration

	infos    []ProfileInfo
	mem      map[string][]byte // memory-mode artifact bytes
	lastCap  time.Time
	captures int // lifetime capture events, for id assignment
}

func newCapturer(dir string, limit int, cooldown time.Duration) (*capturer, error) {
	c := &capturer{dir: dir, limit: limit, cooldown: cooldown, mem: map[string][]byte{}}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profiles: %w", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, profileIndexFile))
	if errors.Is(err, os.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("obs: profiles: %w", err)
	}
	var infos []ProfileInfo
	if err := json.Unmarshal(data, &infos); err != nil {
		return nil, fmt.Errorf("obs: profiles: parse index: %w", err)
	}
	// Keep only entries whose artifact survived, and resume the id
	// counter past the highest persisted capture.
	for _, in := range infos {
		if _, err := os.Stat(filepath.Join(dir, in.ID+".pprof")); err == nil {
			c.infos = append(c.infos, in)
			var n int
			if _, err := fmt.Sscanf(in.ID, "prof-%d-", &n); err == nil && n > c.captures {
				c.captures = n
			}
		}
	}
	sort.Slice(c.infos, func(i, j int) bool { return c.infos[i].ID < c.infos[j].ID })
	return c, nil
}

// capture snapshots every profile kind for one alert firing. It
// returns the new artifact ids (empty when rate-limited), and an error
// only when every kind failed — a partial capture is still useful.
func (c *capturer) capture(now time.Time, alertID, metric string) ([]string, error) {
	if !c.lastCap.IsZero() && now.Sub(c.lastCap) < c.cooldown {
		metricProfilesSkipped.With("cooldown").Inc()
		return nil, nil
	}
	c.lastCap = now
	c.captures++
	var ids []string
	var errs []error
	for _, kind := range profileKinds {
		id := fmt.Sprintf("prof-%06d-%s", c.captures, kind)
		data, err := c.snapshot(kind)
		if err != nil {
			metricProfilesSkipped.With("error").Inc()
			errs = append(errs, fmt.Errorf("%s: %w", kind, err))
			continue
		}
		if err := c.store(id, data); err != nil {
			metricProfilesSkipped.With("error").Inc()
			errs = append(errs, fmt.Errorf("%s: %w", kind, err))
			continue
		}
		c.infos = append(c.infos, ProfileInfo{
			ID: id, Kind: kind, AlertID: alertID, Metric: metric,
			Time: now, Size: len(data),
		})
		metricProfilesCaptured.With(kind).Inc()
		ids = append(ids, id)
	}
	c.evict()
	if c.dir != "" {
		if err := c.saveIndex(); err != nil {
			errs = append(errs, err)
		}
	}
	if len(ids) == 0 && len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return ids, nil
}

// snapshot renders one pprof profile. The "obs.profilecapture"
// injection point models the capture itself failing (an exhausted disk,
// a wedged runtime) without ever failing the alert that asked for it.
func (c *capturer) snapshot(kind string) ([]byte, error) {
	if err := faultinject.Fire("obs.profilecapture"); err != nil {
		return nil, err
	}
	p := pprof.Lookup(kind)
	if p == nil {
		return nil, fmt.Errorf("obs: no pprof profile %q", kind)
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (c *capturer) store(id string, data []byte) error {
	if c.dir == "" {
		c.mem[id] = data
		return nil
	}
	// tmp + rename: a crash mid-write never leaves a half-written
	// artifact under a listed id (the index only references completed
	// writes, and the index itself is replaced atomically after).
	path := filepath.Join(c.dir, id+".pprof")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// evict trims the ring to its capacity, oldest artifacts first.
func (c *capturer) evict() {
	for len(c.infos) > c.limit {
		victim := c.infos[0]
		c.infos = c.infos[1:]
		if c.dir == "" {
			delete(c.mem, victim.ID)
		} else {
			os.Remove(filepath.Join(c.dir, victim.ID+".pprof"))
		}
	}
}

func (c *capturer) saveIndex() error {
	data, err := json.MarshalIndent(c.infos, "", "  ")
	if err != nil {
		return err
	}
	return AtomicWrite(filepath.Join(c.dir, profileIndexFile), append(data, '\n'))
}

// list returns the retained artifacts, oldest first.
func (c *capturer) list() []ProfileInfo {
	return append([]ProfileInfo(nil), c.infos...)
}

// get returns one artifact's metadata and bytes.
func (c *capturer) get(id string) (ProfileInfo, []byte, error) {
	for _, in := range c.infos {
		if in.ID != id {
			continue
		}
		if c.dir == "" {
			return in, c.mem[id], nil
		}
		data, err := os.ReadFile(filepath.Join(c.dir, id+".pprof"))
		if err != nil {
			return ProfileInfo{}, nil, err
		}
		return in, data, nil
	}
	return ProfileInfo{}, nil, fmt.Errorf("obs: no profile %q", id)
}
