package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRuleValidate(t *testing.T) {
	good := []Rule{
		{Metric: "benchd_queue_depth", Kind: KindThreshold, Op: OpGT, Value: 10},
		{Metric: "x", Kind: KindRate, Op: OpLT, Value: -1, Window: Duration(time.Minute)},
		{Metric: "x", Kind: KindAbsence},
	}
	for i, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("good rule %d rejected: %v", i, err)
		}
	}
	bad := []Rule{
		{Kind: KindThreshold, Op: OpGT},                       // no metric
		{Metric: "x", Kind: KindThreshold},                    // no op
		{Metric: "x", Kind: KindThreshold, Op: "above"},       // bad op
		{Metric: "x", Kind: "spike"},                          // bad kind
		{Metric: "x", Kind: KindAbsence, Op: OpGT},            // absence takes no op
		{Metric: "x", Kind: KindThreshold, Op: OpGT, For: -1}, // negative for
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad rule %d accepted", i)
		}
	}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	r := Rule{Metric: "x", Kind: KindThreshold, Op: OpGT, Value: 5, For: Duration(90 * time.Second)}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"for":"1m30s"`; !strings.Contains(string(data), want) {
		t.Fatalf("marshal = %s, want it to contain %s", data, want)
	}
	var back Rule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.For != r.For {
		t.Fatalf("round-trip For = %v, want %v", back.For, r.For)
	}
	if err := json.Unmarshal([]byte(`{"metric":"x","kind":"threshold","op":"gt","for":"banana"}`), &back); err == nil {
		t.Fatal("bad duration accepted")
	}
}

// step advances one evaluation tick for a threshold rule.
func step(t *testing.T, ar *armedRule, now time.Time, value float64) (fired, resolved bool) {
	t.Helper()
	breaching := ar.evaluate(now, true, value, nil, time.Second)
	return ar.transition(now, breaching)
}

// TestHysteresisFireResolveFlap walks the state machine with an
// injected clock: a breach shorter than For never fires, a held breach
// fires exactly once, recovery resolves exactly once, and flapping
// around the threshold produces no events at all.
func TestHysteresisFireResolveFlap(t *testing.T) {
	ar := &armedRule{Rule: Rule{
		ID: "alert-000001", Metric: "q", Kind: KindThreshold, Op: OpGT,
		Value: 10, For: Duration(3 * time.Second),
	}, state: StateOK}
	now := t0

	// Breach for 2s (< For), then recover: pending, never firing.
	for i := 0; i < 2; i++ {
		if f, r := step(t, ar, now, 50); f || r {
			t.Fatalf("tick %d: fired=%v resolved=%v during pending window", i, f, r)
		}
		now = now.Add(time.Second)
	}
	if ar.state != StatePending {
		t.Fatalf("state = %s, want pending", ar.state)
	}
	if f, r := step(t, ar, now, 5); f || r {
		t.Fatalf("recovery from pending published an event (fired=%v resolved=%v)", f, r)
	}
	if ar.state != StateOK {
		t.Fatalf("state after recovery = %s, want ok", ar.state)
	}

	// Sustained breach: fires exactly once when the For window elapses.
	now = now.Add(time.Second)
	firedCount := 0
	for i := 0; i < 6; i++ {
		f, r := step(t, ar, now, 99)
		if f {
			firedCount++
		}
		if r {
			t.Fatal("resolved while still breaching")
		}
		now = now.Add(time.Second)
	}
	if firedCount != 1 {
		t.Fatalf("sustained breach fired %d times, want 1", firedCount)
	}
	if ar.state != StateFiring || ar.fires != 1 {
		t.Fatalf("state=%s fires=%d, want firing/1", ar.state, ar.fires)
	}

	// Recovery: resolves exactly once.
	f, r := step(t, ar, now, 1)
	if f || !r {
		t.Fatalf("recovery: fired=%v resolved=%v, want resolve only", f, r)
	}
	now = now.Add(time.Second)
	if f, r := step(t, ar, now, 1); f || r {
		t.Fatal("second ok tick published an event")
	}

	// Flap faster than For: no events ever.
	for i := 0; i < 10; i++ {
		v := 1.0
		if i%2 == 0 {
			v = 99
		}
		if f, r := step(t, ar, now, v); f || r {
			t.Fatalf("flap tick %d published an event (fired=%v resolved=%v)", i, f, r)
		}
		now = now.Add(time.Second)
	}
	if ar.fires != 1 {
		t.Fatalf("flapping changed fire count to %d", ar.fires)
	}
}

// TestForZeroFiresImmediately: no hysteresis requested, first breaching
// tick fires.
func TestForZeroFiresImmediately(t *testing.T) {
	ar := &armedRule{Rule: Rule{Metric: "q", Kind: KindThreshold, Op: OpGE, Value: 1}, state: StateOK}
	if f, _ := step(t, ar, t0, 1); !f {
		t.Fatal("For=0 rule did not fire on first breach")
	}
}

// TestRateRule: the rate kind computes a per-second delta over its
// window from the raw tier.
func TestRateRule(t *testing.T) {
	s := newSeries("counter", 100, 3)
	now := t0
	// Counter climbing 5/s for 20 ticks.
	for i := 0; i <= 20; i++ {
		s.add(now.Add(time.Duration(i)*time.Second), float64(i*5), 10)
	}
	now = now.Add(20 * time.Second)
	ar := &armedRule{Rule: Rule{
		Metric: "c", Kind: KindRate, Op: OpGT, Value: 4,
		Window: Duration(10 * time.Second),
	}, state: StateOK}
	if !ar.evaluate(now, true, 100, s, time.Second) {
		t.Fatalf("rate %g did not breach gt 4", ar.lastValue)
	}
	if ar.lastValue < 4.9 || ar.lastValue > 5.1 {
		t.Fatalf("computed rate = %g, want ≈5", ar.lastValue)
	}
	ar.Value = 6 // now the limit is above the true rate
	if ar.evaluate(now, true, 100, s, time.Second) {
		t.Fatalf("rate %g breached gt 6", ar.lastValue)
	}
	// Too little history: never breaches rather than guessing.
	young := newSeries("counter", 100, 3)
	young.add(now, 1, 10)
	if ar.evaluate(now, true, 1, young, time.Second) {
		t.Fatal("single-point series produced a rate breach")
	}
}

// TestAbsenceRule: breaches exactly when the metric is missing from the
// scrape.
func TestAbsenceRule(t *testing.T) {
	ar := &armedRule{Rule: Rule{Metric: "gone", Kind: KindAbsence}, state: StateOK}
	if ar.evaluate(t0, true, 3, nil, time.Second) {
		t.Fatal("present metric breached absence rule")
	}
	if !ar.evaluate(t0, false, 0, nil, time.Second) {
		t.Fatal("missing metric did not breach absence rule")
	}
}
