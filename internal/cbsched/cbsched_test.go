package cbsched

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eventbus"
	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// harness is a scheduler over a fake clock and a recording executor:
// tests advance time and call Tick directly, so every firing decision
// is deterministic.
type harness struct {
	t   *testing.T
	s   *Scheduler
	now time.Time

	mu       sync.Mutex
	started  []string // run ids handed out, in order
	startErr error
	hash     string
	hashErr  error
	events   []string // "type schedule_id trigger"
}

func newHarness(t *testing.T, mutate func(*Config)) *harness {
	t.Helper()
	h := &harness{t: t, now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC), hash: "hash-a"}
	cfg := Config{
		Now:          func() time.Time { return h.now },
		TickInterval: time.Second,
		Rand:         NoJitter,
		Start: func(sp Spec) (string, error) {
			h.mu.Lock()
			defer h.mu.Unlock()
			if h.startErr != nil {
				return "", h.startErr
			}
			id := fmt.Sprintf("run-%03d", len(h.started)+1)
			h.started = append(h.started, id)
			return id, nil
		},
		Hash: func(sp Spec) (string, error) {
			h.mu.Lock()
			defer h.mu.Unlock()
			return h.hash, h.hashErr
		},
		Publish: func(typ string, data map[string]string) {
			h.mu.Lock()
			defer h.mu.Unlock()
			h.events = append(h.events, typ+" "+data["schedule_id"]+" "+data["trigger"])
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.s = s
	return h
}

func (h *harness) advance(d time.Duration) { h.now = h.now.Add(d) }

func (h *harness) runs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.started...)
}

func TestValidate(t *testing.T) {
	cases := []struct {
		sp   Spec
		want string
	}{
		{Spec{System: "a", Every: Duration(time.Second)}, "required"},
		{Spec{Benchmark: "b", System: "a"}, "trigger"},
		{Spec{Benchmark: "b", System: "a", Every: Duration(time.Second), NumTasks: -1}, "non-negative"},
	}
	for _, c := range cases {
		err := c.sp.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want containing %q", c.sp, err, c.want)
		}
	}
	ok := Spec{Benchmark: "b", System: "a", OnBuildChange: true}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v", ok, err)
	}
}

// TestIntervalFiring: a 30s schedule fires once per interval, not per
// tick, and not before the first interval elapses.
func TestIntervalFiring(t *testing.T) {
	h := newHarness(t, nil)
	st, err := h.s.Add(Spec{Benchmark: "bs", System: "sys", Every: Duration(30 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if want := h.now.Add(30 * time.Second); !st.NextRunAt.Equal(want) {
		t.Fatalf("next run = %v, want %v", st.NextRunAt, want)
	}
	h.s.Tick() // immediately: nothing due
	h.advance(29 * time.Second)
	h.s.Tick()
	if got := h.runs(); len(got) != 0 {
		t.Fatalf("fired early: %v", got)
	}
	h.advance(time.Second)
	h.s.Tick()
	h.s.Tick() // same instant: must not double-fire
	if got := h.runs(); len(got) != 1 {
		t.Fatalf("runs = %v, want 1", got)
	}
	// Completion re-arms; the next interval fires again.
	h.s.Complete(st.ID, "run-001", "hash-a", nil)
	h.advance(30 * time.Second)
	h.s.Tick()
	if got := h.runs(); len(got) != 2 {
		t.Fatalf("runs = %v, want 2", got)
	}
	got, _ := h.s.Get(st.ID)
	if got.Fires != 2 || got.InFlight != true || got.ConsecutiveFailures != 0 {
		t.Fatalf("status = %+v", got)
	}
	// schedule.fired events published with the trigger.
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.events) != 2 || h.events[0] != eventbus.TypeScheduleFired+" "+st.ID+" interval" {
		t.Fatalf("events = %v", h.events)
	}
}

// TestJitterBounds: with a real random draw, every next-run time lands
// in [every, every*(1+jitter)].
func TestJitterBounds(t *testing.T) {
	const every, jitter = 10 * time.Second, 0.2
	draws := []float64{0, 0.5, 0.999}
	i := 0
	h := newHarness(t, func(c *Config) {
		c.Jitter = jitter
		c.Rand = func() float64 { d := draws[i%len(draws)]; i++; return d }
	})
	for n := 0; n < 3; n++ {
		st, err := h.s.Add(Spec{Benchmark: "bs", System: "sys", Every: Duration(every)})
		if err != nil {
			t.Fatal(err)
		}
		delay := st.NextRunAt.Sub(h.now)
		lo, hi := every, every+time.Duration(jitter*float64(every))
		if delay < lo || delay > hi {
			t.Errorf("draw %d: delay %v outside [%v, %v]", n, delay, lo, hi)
		}
		want := every + time.Duration(draws[n]*jitter*float64(every))
		if delay != want {
			t.Errorf("draw %d: delay %v, want %v", n, delay, want)
		}
	}
}

// TestOnBuildChange: a pure build-change schedule fires when the hash
// first appears and whenever it changes, and stays quiet while it is
// stable.
func TestOnBuildChange(t *testing.T) {
	h := newHarness(t, nil)
	st, err := h.s.Add(Spec{Benchmark: "bs", System: "sys", OnBuildChange: true})
	if err != nil {
		t.Fatal(err)
	}
	// First tick: no recorded hash yet -> establish the baseline by
	// firing once.
	h.s.Tick()
	if got := h.runs(); len(got) != 1 {
		t.Fatalf("runs = %v, want 1 (baseline fire)", got)
	}
	h.s.Complete(st.ID, "run-001", "hash-a", nil)

	// Stable hash: ticks pass, nothing fires.
	for i := 0; i < 5; i++ {
		h.advance(time.Second)
		h.s.Tick()
	}
	if got := h.runs(); len(got) != 1 {
		t.Fatalf("fired on unchanged hash: %v", got)
	}

	// The toolchain moves: next tick fires with the build-change
	// trigger.
	h.mu.Lock()
	h.hash = "hash-b"
	h.mu.Unlock()
	h.advance(time.Second)
	h.s.Tick()
	if got := h.runs(); len(got) != 2 {
		t.Fatalf("runs = %v, want 2 after hash change", got)
	}
	h.mu.Lock()
	lastEvent := h.events[len(h.events)-1]
	h.mu.Unlock()
	if lastEvent != eventbus.TypeScheduleFired+" "+st.ID+" build-change" {
		t.Fatalf("event = %q", lastEvent)
	}
	// Completion with the new hash re-baselines.
	h.s.Complete(st.ID, "run-002", "hash-b", nil)
	h.advance(time.Second)
	h.s.Tick()
	if got := h.runs(); len(got) != 2 {
		t.Fatalf("re-fired after re-baseline: %v", got)
	}
}

// TestHybridIntervalAndBuildChange: with both triggers, an unchanged
// hash still fires on the interval, and the trigger label tells them
// apart.
func TestHybridIntervalAndBuildChange(t *testing.T) {
	h := newHarness(t, nil)
	st, err := h.s.Add(Spec{
		Benchmark: "bs", System: "sys",
		Every: Duration(10 * time.Second), OnBuildChange: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.advance(10 * time.Second)
	h.s.Tick() // no baseline hash yet -> build-change
	h.s.Complete(st.ID, "run-001", "hash-a", nil)
	h.advance(10 * time.Second)
	h.s.Tick() // unchanged hash, interval due -> interval
	h.s.Complete(st.ID, "run-002", "hash-a", nil)
	if got := h.runs(); len(got) != 2 {
		t.Fatalf("runs = %v", got)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !strings.HasSuffix(h.events[0], "build-change") || !strings.HasSuffix(h.events[1], "interval") {
		t.Fatalf("events = %v", h.events)
	}
}

// TestOverlapSuppression: a schedule whose run outlives its interval
// never has two runs in flight; suppressed wakeups are counted and the
// schedule re-arms.
func TestOverlapSuppression(t *testing.T) {
	h := newHarness(t, nil)
	st, err := h.s.Add(Spec{Benchmark: "bs", System: "sys", Every: Duration(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	h.advance(time.Second)
	h.s.Tick() // fires; run stays in flight
	for i := 0; i < 4; i++ {
		h.advance(time.Second)
		h.s.Tick() // due again, but suppressed
	}
	if got := h.runs(); len(got) != 1 {
		t.Fatalf("runs = %v, want 1 while in flight", got)
	}
	got, _ := h.s.Get(st.ID)
	if got.Suppressed != 4 || got.Fires != 1 {
		t.Fatalf("status = %+v", got)
	}
	// Completion releases the slot; the next due tick fires.
	h.s.Complete(st.ID, "run-001", "hash-a", nil)
	h.advance(time.Second)
	h.s.Tick()
	if got := h.runs(); len(got) != 2 {
		t.Fatalf("runs = %v, want 2 after completion", got)
	}
}

// TestFailureStreakBackoff: rejected submissions and failed runs grow
// an exponential backoff from the schedule's interval, capped, and one
// success clears the streak.
func TestFailureStreakBackoff(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.MaxBackoff = 40 * time.Second })
	st, err := h.s.Add(Spec{Benchmark: "bs", System: "sys", Every: Duration(10 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	h.startErr = fmt.Errorf("run queue is full")
	h.mu.Unlock()

	wantBackoffs := []time.Duration{
		10 * time.Second, // streak 1: base
		20 * time.Second, // streak 2: *2
		40 * time.Second, // streak 3: *4
		40 * time.Second, // streak 4: capped
	}
	for i, want := range wantBackoffs {
		st2, _ := h.s.Get(st.ID)
		h.now = st2.NextRunAt
		h.s.Tick()
		got, _ := h.s.Get(st.ID)
		if got.ConsecutiveFailures != i+1 {
			t.Fatalf("streak = %d, want %d", got.ConsecutiveFailures, i+1)
		}
		if d := got.NextRunAt.Sub(h.now); d != want {
			t.Fatalf("failure %d: backoff %v, want %v", i+1, d, want)
		}
		if got.LastError == "" {
			t.Fatal("LastError not recorded")
		}
	}
	if got := h.runs(); len(got) != 0 {
		t.Fatalf("runs = %v, want none", got)
	}

	// The queue opens up: the next firing succeeds and clears the
	// streak.
	h.mu.Lock()
	h.startErr = nil
	h.mu.Unlock()
	st2, _ := h.s.Get(st.ID)
	h.now = st2.NextRunAt
	h.s.Tick()
	h.s.Complete(st.ID, "run-001", "hash-a", nil)
	got, _ := h.s.Get(st.ID)
	if got.ConsecutiveFailures != 0 || got.LastError != "" || got.Fires != 1 {
		t.Fatalf("status after recovery = %+v", got)
	}

	// A failed *run* (not submission) also grows the streak.
	h.now = got.NextRunAt
	h.s.Tick()
	h.s.Complete(st.ID, "run-002", "", fmt.Errorf("sanity check failed"))
	got, _ = h.s.Get(st.ID)
	if got.ConsecutiveFailures != 1 || got.InFlight {
		t.Fatalf("status after failed run = %+v", got)
	}
}

func TestCRUDAndRestore(t *testing.T) {
	h := newHarness(t, nil)
	a, _ := h.s.Add(Spec{Benchmark: "a", System: "s", Every: Duration(time.Minute)})
	b, _ := h.s.Add(Spec{Benchmark: "b", System: "s", OnBuildChange: true})
	if a.ID == b.ID || a.ID == "" {
		t.Fatalf("ids: %q %q", a.ID, b.ID)
	}
	if _, err := h.s.Add(Spec{ID: a.ID, Benchmark: "c", System: "s", Every: Duration(time.Minute)}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if got := h.s.List(); len(got) != 2 || got[0].ID != a.ID {
		t.Fatalf("list = %+v", got)
	}
	if !h.s.Remove(a.ID) || h.s.Remove(a.ID) {
		t.Fatal("remove semantics")
	}
	if _, ok := h.s.Get(a.ID); ok {
		t.Fatal("removed schedule still present")
	}

	// Restore into a fresh scheduler: the baseline hash survives (no
	// spurious build-change fire) and new IDs don't collide.
	h.s.Complete(b.ID, "", "", nil)
	snap := h.s.Snapshot()
	if len(snap) != 1 || snap[0].Spec.ID != b.ID {
		t.Fatalf("snapshot = %+v", snap)
	}
	snap[0].LastBuildHash = "hash-a"

	h2 := newHarness(t, nil)
	h2.s.Restore(snap)
	st, ok := h2.s.Get(b.ID)
	if !ok || st.LastBuildHash != "hash-a" {
		t.Fatalf("restored = %+v ok=%v", st, ok)
	}
	h2.s.Tick() // hash still "hash-a": must not fire
	if got := h2.runs(); len(got) != 0 {
		t.Fatalf("restored schedule re-fired on unchanged hash: %v", got)
	}
	c, _ := h2.s.Add(Spec{Benchmark: "c", System: "s", Every: Duration(time.Minute)})
	if c.ID == b.ID {
		t.Fatalf("restored id counter collided: %q", c.ID)
	}
}

// TestTickFaultInjection: an injected tick fault skips the pass
// entirely; the schedule fires on the next clean tick, never twice.
func TestTickFaultInjection(t *testing.T) {
	rules, err := faultinject.ParseSchedule("cbsched.tick:error:times=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Load(1, rules); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	h := newHarness(t, nil)
	if _, err := h.s.Add(Spec{Benchmark: "bs", System: "sys", Every: Duration(time.Second)}); err != nil {
		t.Fatal(err)
	}
	h.advance(time.Second)
	h.s.Tick() // faulted
	h.s.Tick() // faulted
	if got := h.runs(); len(got) != 0 {
		t.Fatalf("fired through a faulted tick: %v", got)
	}
	h.s.Tick() // clean: fires once
	if got := h.runs(); len(got) != 1 {
		t.Fatalf("runs = %v, want 1", got)
	}
}

// TestStartStop: the real loop fires a short-interval schedule without
// manual ticks, and Stop halts it cleanly and idempotently.
func TestStartStop(t *testing.T) {
	var mu sync.Mutex
	fired := 0
	s, err := New(Config{
		TickInterval: 5 * time.Millisecond,
		Rand:         NoJitter,
		Start: func(sp Spec) (string, error) {
			mu.Lock()
			defer mu.Unlock()
			fired++
			return fmt.Sprintf("run-%03d", fired), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Add(Spec{Benchmark: "bs", System: "sys", Every: Duration(10 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Start() // idempotent
	if !s.Running() {
		t.Fatal("not running after Start")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := fired
		mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("schedule never fired from the tick loop")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Complete(st.ID, "run-001", "", nil)
	s.Stop()
	s.Stop() // idempotent
	if s.Running() {
		t.Fatal("running after Stop")
	}
	mu.Lock()
	n := fired
	mu.Unlock()
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if fired > n+1 {
		t.Fatalf("kept firing after Stop: %d -> %d", n, fired)
	}
}

func TestMetrics(t *testing.T) {
	reg := telemetry.DefaultRegistry
	firesBefore, _ := reg.Value("benchd_sched_fires_total", "interval")
	supBefore, _ := reg.Value("benchd_sched_overlap_suppressed_total")

	h := newHarness(t, nil)
	st, _ := h.s.Add(Spec{Benchmark: "bs", System: "sys", Every: Duration(time.Second)})
	h.advance(time.Second)
	h.s.Tick()
	h.advance(time.Second)
	h.s.Tick() // suppressed

	if got, _ := reg.Value("benchd_sched_fires_total", "interval"); got != firesBefore+1 {
		t.Errorf("fires delta = %v", got-firesBefore)
	}
	if got, _ := reg.Value("benchd_sched_overlap_suppressed_total"); got != supBefore+1 {
		t.Errorf("suppressed delta = %v", got-supBefore)
	}
	schedules, fires, suppressed := h.s.Counters()
	if schedules != 1 || fires != 1 || suppressed != 1 {
		t.Errorf("counters = %d %d %d", schedules, fires, suppressed)
	}
	_ = st
}
