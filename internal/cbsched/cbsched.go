// Package cbsched is the recurring-suite scheduler that turns benchd
// from a request-driven daemon into a continuous-benchmarking service:
// registered schedules re-run a suite on a jittered interval or when
// the build DAG hash changes, without any client request.
//
// The design follows the influxdb task scheduler (SNIPPETS.md Snippet
// 3): a single tick loop with an injectable clock evaluates every
// schedule's next-run time, and execution is delegated through a Start
// callback — here, benchd's bounded worker pool — whose backpressure
// the scheduler respects by backing off instead of queueing internally.
// Per-schedule state (last run, next run, consecutive failures,
// in-flight) lives in the scheduler; overlap suppression guarantees a
// schedule never has two in-flight runs no matter how slow the suite or
// fast the interval.
package cbsched

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/eventbus"
	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

var (
	metricFires = telemetry.DefaultRegistry.Counter(
		"benchd_sched_fires_total",
		"Schedule firings that submitted a run, by trigger (interval, build-change).",
		"trigger")
	metricSuppressed = telemetry.DefaultRegistry.Counter(
		"benchd_sched_overlap_suppressed_total",
		"Due schedule firings suppressed because the previous run was still in flight.").With()
	metricSubmitFailures = telemetry.DefaultRegistry.Counter(
		"benchd_sched_submit_failures_total",
		"Schedule firings whose submission was rejected (full queue, degraded store); the schedule backs off.").With()
	metricSchedules = telemetry.DefaultRegistry.Gauge(
		"benchd_sched_schedules",
		"Registered recurring schedules.").With()
)

// Duration marshals as a Go duration string ("90s", "5m") so persisted
// schedule files and API payloads stay human-readable and -writable.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("cbsched: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// Spec declares one recurring suite: what to run and when to re-run
// it. At least one trigger (Every > 0 or OnBuildChange) must be set.
type Spec struct {
	ID   string `json:"id,omitempty"`
	Name string `json:"name,omitempty"`

	Benchmark string `json:"benchmark"`
	System    string `json:"system"`
	BuildSpec string `json:"spec,omitempty"`

	NumTasks     int `json:"num_tasks,omitempty"`
	TasksPerNode int `json:"tasks_per_node,omitempty"`
	CPUsPerTask  int `json:"cpus_per_task,omitempty"`

	// Every re-fires the suite on this interval (plus jitter). Zero
	// disables the interval trigger.
	Every Duration `json:"every,omitempty"`
	// OnBuildChange fires whenever the benchmark's concretized build
	// DAG hash differs from the hash of the schedule's last successful
	// run — the "a new toolchain landed, re-measure" trigger. The check
	// is paced by Every when set, else by every tick.
	OnBuildChange bool `json:"on_build_change,omitempty"`
}

// Validate checks the parts of a Spec the scheduler itself can judge
// (callers validate benchmark/system names against their estate).
func (sp Spec) Validate() error {
	if sp.Benchmark == "" || sp.System == "" {
		return fmt.Errorf("cbsched: benchmark and system are required")
	}
	if sp.Every <= 0 && !sp.OnBuildChange {
		return fmt.Errorf("cbsched: a schedule needs a trigger: every > 0 and/or on_build_change")
	}
	if sp.Every < 0 {
		return fmt.Errorf("cbsched: every must be positive, got %s", time.Duration(sp.Every))
	}
	if sp.NumTasks < 0 || sp.TasksPerNode < 0 || sp.CPUsPerTask < 0 {
		return fmt.Errorf("cbsched: layout overrides must be non-negative")
	}
	return nil
}

// Status is a schedule's spec plus its live state, as reported by List
// and Get and served by GET /v1/schedules.
type Status struct {
	Spec
	LastRunAt           time.Time `json:"last_run_at,omitempty"`
	NextRunAt           time.Time `json:"next_run_at,omitempty"`
	LastRunID           string    `json:"last_run_id,omitempty"`
	LastBuildHash       string    `json:"last_build_hash,omitempty"`
	LastError           string    `json:"last_error,omitempty"`
	ConsecutiveFailures int       `json:"consecutive_failures"`
	InFlight            bool      `json:"in_flight"`
	Fires               uint64    `json:"fires"`
	Suppressed          uint64    `json:"suppressed"`
}

// Persisted is what survives a daemon restart: the spec plus the last
// build hash, so an on-build-change schedule doesn't spuriously re-fire
// just because the daemon rebooted under an unchanged toolchain.
type Persisted struct {
	Spec          Spec   `json:"spec"`
	LastBuildHash string `json:"last_build_hash,omitempty"`
}

// schedule is the internal mutable state behind one Spec.
type schedule struct {
	spec     Spec
	lastRun  time.Time
	nextRun  time.Time
	lastID   string
	lastHash string
	lastErr  string
	failures int
	inFlight bool
	fires    uint64
	suppress uint64
}

// Config wires a Scheduler to its host.
type Config struct {
	// Start submits one run for the schedule through the host's bounded
	// worker pool and returns its run id. An error (full queue, degraded
	// store) counts as a failed firing: the schedule backs off with its
	// failure streak instead of hot-looping against backpressure.
	Start func(sp Spec) (runID string, err error)
	// Hash returns the benchmark's current concretized build DAG hash
	// on the schedule's system — the on-build-change trigger compares it
	// against the hash recorded by the schedule's last successful run.
	// Nil disables build-change triggers (Add rejects such specs).
	Hash func(sp Spec) (string, error)
	// Publish, when set, receives scheduler lifecycle events
	// (eventbus.TypeScheduleFired). Publish failures are the host's to
	// absorb; the scheduler fires regardless.
	Publish func(typ string, data map[string]string)

	// Now is the injectable clock (default time.Now).
	Now func() time.Time
	// TickInterval paces the tick loop (default 1s).
	TickInterval time.Duration
	// Jitter is the fraction of Every added uniformly at random to each
	// next-run time, de-synchronising schedule herds (default 0.1,
	// clamped to [0,1]). The draw comes from Rand.
	Jitter float64
	// Rand supplies jitter draws in [0,1) (default math/rand; fix it in
	// tests for deterministic next-run times).
	Rand func() float64
	// BaseBackoff seeds the failure-streak backoff for schedules whose
	// Every is zero (default 5s).
	BaseBackoff time.Duration
	// MaxBackoff caps the failure-streak backoff (default 10m).
	MaxBackoff time.Duration
	// Logger receives tick and firing diagnostics (default slog.Default).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.TickInterval <= 0 {
		c.TickInterval = time.Second
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.Jitter > 1 {
		c.Jitter = 1
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 5 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 10 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// NoJitter is a Config.Rand that always draws zero, pinning next-run
// times for deterministic tests.
func NoJitter() float64 { return 0 }

// Scheduler owns the registered schedules and the tick loop.
type Scheduler struct {
	cfg Config

	mu     sync.Mutex
	scheds map[string]*schedule
	order  []string // registration order, for stable listings
	nextID int

	loopWG  sync.WaitGroup
	stop    chan struct{}
	started bool
	stopped bool
}

// New builds a scheduler. Start must be non-nil; Hash may be nil if no
// on-build-change schedules will be registered.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Start == nil {
		return nil, fmt.Errorf("cbsched: Config.Start is required")
	}
	return &Scheduler{
		cfg:    cfg.withDefaults(),
		scheds: map[string]*schedule{},
		stop:   make(chan struct{}),
	}, nil
}

// Add registers a schedule. An empty ID is assigned; a duplicate ID is
// rejected. The first firing of an interval schedule lands one jittered
// interval from now; an on-build-change schedule is checked from the
// next tick.
func (s *Scheduler) Add(sp Spec) (Status, error) {
	if err := sp.Validate(); err != nil {
		return Status{}, err
	}
	if sp.OnBuildChange && s.cfg.Hash == nil {
		return Status{}, fmt.Errorf("cbsched: on_build_change needs a Hash callback")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sp.ID == "" {
		s.nextID++
		sp.ID = fmt.Sprintf("sched-%06d", s.nextID)
	} else if _, dup := s.scheds[sp.ID]; dup {
		return Status{}, fmt.Errorf("cbsched: schedule %q already exists", sp.ID)
	}
	sc := &schedule{spec: sp}
	now := s.cfg.Now()
	if sp.Every > 0 {
		sc.nextRun = now.Add(s.jittered(time.Duration(sp.Every)))
	} else {
		sc.nextRun = now // pure build-change: eligible from the next tick
	}
	s.scheds[sp.ID] = sc
	s.order = append(s.order, sp.ID)
	metricSchedules.Set(float64(len(s.scheds)))
	s.cfg.Logger.Info("schedule registered",
		"schedule_id", sp.ID, "benchmark", sp.Benchmark, "system", sp.System,
		"every", time.Duration(sp.Every).String(), "on_build_change", sp.OnBuildChange,
		"next_run", sc.nextRun)
	return statusLocked(sc), nil
}

// Remove unregisters a schedule. An in-flight run keeps executing; its
// completion is simply no longer recorded anywhere.
func (s *Scheduler) Remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.scheds[id]; !ok {
		return false
	}
	delete(s.scheds, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	metricSchedules.Set(float64(len(s.scheds)))
	s.cfg.Logger.Info("schedule removed", "schedule_id", id)
	return true
}

// Get returns one schedule's status.
func (s *Scheduler) Get(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, ok := s.scheds[id]
	if !ok {
		return Status{}, false
	}
	return statusLocked(sc), true
}

// List returns every schedule's status in registration order.
func (s *Scheduler) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, statusLocked(s.scheds[id]))
	}
	return out
}

// Snapshot returns the persistable view of every schedule, sorted by ID
// for a stable on-disk file.
func (s *Scheduler) Snapshot() []Persisted {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Persisted, 0, len(s.scheds))
	for _, sc := range s.scheds {
		out = append(out, Persisted{Spec: sc.spec, LastBuildHash: sc.lastHash})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.ID < out[j].Spec.ID })
	return out
}

// Restore registers persisted schedules (skipping invalid ones with a
// logged warning rather than refusing to boot) and advances the ID
// counter past every restored ID so new schedules never collide.
func (s *Scheduler) Restore(specs []Persisted) {
	for _, p := range specs {
		st, err := s.Add(p.Spec)
		if err != nil {
			s.cfg.Logger.Warn("dropping unrestorable schedule",
				"schedule_id", p.Spec.ID, "error", err.Error())
			continue
		}
		s.mu.Lock()
		if sc, ok := s.scheds[st.ID]; ok {
			sc.lastHash = p.LastBuildHash
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	for id := range s.scheds {
		var n int
		if _, err := fmt.Sscanf(id, "sched-%06d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	s.mu.Unlock()
}

func statusLocked(sc *schedule) Status {
	return Status{
		Spec:                sc.spec,
		LastRunAt:           sc.lastRun,
		NextRunAt:           sc.nextRun,
		LastRunID:           sc.lastID,
		LastBuildHash:       sc.lastHash,
		LastError:           sc.lastErr,
		ConsecutiveFailures: sc.failures,
		InFlight:            sc.inFlight,
		Fires:               sc.fires,
		Suppressed:          sc.suppress,
	}
}

// Counters returns scheduler-lifetime totals for /healthz.
func (s *Scheduler) Counters() (schedules int, fires, suppressed uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sc := range s.scheds {
		fires += sc.fires
		suppressed += sc.suppress
	}
	return len(s.scheds), fires, suppressed
}

// Start launches the tick loop. It is a no-op after Stop or a second
// Start.
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.started || s.stopped {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.loopWG.Add(1)
	go func() {
		defer s.loopWG.Done()
		t := time.NewTicker(s.cfg.TickInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.Tick()
			}
		}
	}()
}

// Running reports whether the tick loop is live.
func (s *Scheduler) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started && !s.stopped
}

// Stop halts the tick loop and waits for an in-progress tick to finish.
// Registered schedules stay queryable; in-flight runs complete through
// the host's own drain. Idempotent.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stop)
	s.loopWG.Wait()
}

// Tick evaluates every schedule once against the injectable clock. It
// is called by the loop every TickInterval and directly by tests. The
// "cbsched.tick" injection point models a wedged or crashed tick: the
// whole pass is skipped and the next tick retries — schedules fire
// late, never twice.
func (s *Scheduler) Tick() {
	if err := faultinject.Fire("cbsched.tick"); err != nil {
		s.cfg.Logger.Debug("tick skipped by fault injection", "error", err.Error())
		return
	}
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		sc := s.scheds[id]
		if now.Before(sc.nextRun) {
			continue
		}
		if sc.inFlight {
			// Overlap suppression: the previous run is still executing.
			// Re-arm one interval out so a long run doesn't cause a burst
			// of suppressed wakeups every tick.
			sc.suppress++
			metricSuppressed.Inc()
			sc.nextRun = now.Add(s.jittered(s.interval(sc)))
			s.cfg.Logger.Debug("schedule overlap suppressed",
				"schedule_id", id, "last_run_id", sc.lastID, "next_run", sc.nextRun)
			continue
		}
		trigger := "interval"
		if sc.spec.OnBuildChange {
			hash, err := s.cfg.Hash(sc.spec)
			if err != nil {
				s.failLocked(sc, now, fmt.Errorf("build hash: %w", err))
				continue
			}
			switch {
			case sc.lastHash == "" || hash != sc.lastHash:
				trigger = "build-change"
			case sc.spec.Every > 0:
				trigger = "interval" // hybrid: unchanged hash, interval still fires
			default:
				// Pure build-change schedule, hash unchanged: check again
				// next interval-or-tick without counting a fire.
				sc.nextRun = now.Add(s.checkInterval(sc))
				continue
			}
		}
		s.fireLocked(sc, now, trigger)
	}
}

// fireLocked publishes schedule.fired and submits the run. Called with
// the scheduler lock held; Start and Publish must not call back into
// the scheduler (benchd's worker-pool submit and bus publish do not).
func (s *Scheduler) fireLocked(sc *schedule, now time.Time, trigger string) {
	if s.cfg.Publish != nil {
		s.cfg.Publish(eventbus.TypeScheduleFired, map[string]string{
			"schedule_id": sc.spec.ID,
			"benchmark":   sc.spec.Benchmark,
			"system":      sc.spec.System,
			"trigger":     trigger,
		})
	}
	runID, err := s.cfg.Start(sc.spec)
	if err != nil {
		metricSubmitFailures.Inc()
		s.failLocked(sc, now, err)
		return
	}
	sc.inFlight = true
	sc.lastRun = now
	sc.lastID = runID
	sc.fires++
	metricFires.With(trigger).Inc()
	sc.nextRun = now.Add(s.jittered(s.interval(sc)))
	s.cfg.Logger.Info("schedule fired",
		"schedule_id", sc.spec.ID, "run_id", runID, "trigger", trigger,
		"next_run", sc.nextRun)
}

// failLocked records a failed firing (submission rejected, hash
// uncomputable) and backs the schedule off exponentially with its
// failure streak, so a full queue or a broken spec is probed gently
// instead of hammered every tick.
func (s *Scheduler) failLocked(sc *schedule, now time.Time, err error) {
	sc.failures++
	sc.lastErr = err.Error()
	backoff := s.backoff(sc)
	sc.nextRun = now.Add(backoff)
	s.cfg.Logger.Warn("schedule firing failed",
		"schedule_id", sc.spec.ID, "error", err.Error(),
		"consecutive_failures", sc.failures, "backoff", backoff.String())
}

// Complete reports a fired run's terminal state: the host calls it when
// the run finishes. A successful run clears the failure streak and
// records the run's build hash (the on-build-change baseline); a failed
// run grows the streak and pushes the next firing out by the backoff.
func (s *Scheduler) Complete(scheduleID, runID, buildHash string, runErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, ok := s.scheds[scheduleID]
	if !ok || sc.lastID != runID {
		return // removed while in flight, or a stale completion
	}
	sc.inFlight = false
	if runErr != nil {
		sc.failures++
		sc.lastErr = runErr.Error()
		sc.nextRun = s.cfg.Now().Add(s.backoff(sc))
		s.cfg.Logger.Warn("scheduled run failed",
			"schedule_id", scheduleID, "run_id", runID,
			"consecutive_failures", sc.failures, "error", runErr.Error())
		return
	}
	sc.failures = 0
	sc.lastErr = ""
	if buildHash != "" {
		sc.lastHash = buildHash
	}
}

// interval is the schedule's firing period: Every, or BaseBackoff for
// pure build-change schedules (their "period" only matters for overlap
// re-arming).
func (s *Scheduler) interval(sc *schedule) time.Duration {
	if sc.spec.Every > 0 {
		return time.Duration(sc.spec.Every)
	}
	return s.cfg.BaseBackoff
}

// checkInterval paces unchanged-hash probes: Every when set, else one
// tick.
func (s *Scheduler) checkInterval(sc *schedule) time.Duration {
	if sc.spec.Every > 0 {
		return s.jittered(time.Duration(sc.spec.Every))
	}
	return s.cfg.TickInterval
}

// jittered adds the configured uniform jitter fraction to d.
func (s *Scheduler) jittered(d time.Duration) time.Duration {
	return d + time.Duration(float64(d)*s.cfg.Jitter*s.cfg.Rand())
}

// backoff grows exponentially with the failure streak from the
// schedule's own interval (or BaseBackoff), capped at MaxBackoff.
func (s *Scheduler) backoff(sc *schedule) time.Duration {
	base := s.interval(sc)
	if base > s.cfg.MaxBackoff {
		base = s.cfg.MaxBackoff
	}
	streak := sc.failures
	if streak < 1 {
		streak = 1
	}
	d := float64(base) * math.Pow(2, float64(streak-1))
	if d > float64(s.cfg.MaxBackoff) {
		return s.cfg.MaxBackoff
	}
	return time.Duration(d)
}
