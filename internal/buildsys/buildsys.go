// Package buildsys is the framework's build-and-install layer: the role
// Spack's build stage plays in the paper. It turns a *concrete* spec DAG
// (the concretizer's output) into a populated install tree, one prefix
// per package keyed by the spec's DAG hash.
//
// The package carries three of the paper's principles:
//
//   - Principle 2 (teach the build system): BuildCommands renders each
//     recipe's BuildSystem ("cmake", "make", "autotools", "bundle") into
//     the command script that would produce the binary.
//   - Principle 3 (rebuild every run): Builder.RebuildEveryRun forces the
//     root package to be rebuilt even on a cache hit, so "the steps to
//     reproduce the binary are known" for every result.
//   - Principle 4 (capture all build steps): every built prefix carries a
//     JSON manifest recording the spec, its hash, the exact commands, the
//     dependency hashes, and the simulated build duration.
//
// Builds are simulated — no compiler runs — but the install tree, the
// cache semantics, and the provenance records are real: prefixes are
// created atomically (stage + rename), guarded by per-prefix locks so
// concurrent Installs into a shared tree are race-clean, and independent
// DAG nodes build concurrently over a bounded goroutine worker pool, the
// way Spack's `install -j` parallelises over the DAG.
package buildsys

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/repo"
	"repro/internal/retry"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// Build-cache metrics: a hit is an install satisfied by an existing
// prefix, a miss is a node actually (re)built. Externals are neither —
// they never enter the cache.
var (
	metricCacheHits = telemetry.DefaultRegistry.Counter(
		"buildsys_cache_hits_total",
		"DAG-node installs satisfied by the install-tree cache.").With()
	metricCacheMisses = telemetry.DefaultRegistry.Counter(
		"buildsys_cache_misses_total",
		"DAG-node installs that performed a build (cold cache or forced rebuild).").With()
	metricInstalls = telemetry.DefaultRegistry.Counter(
		"buildsys_installs_total",
		"DAG-node installs by disposition (built, cached, external).",
		"state")
)

// Record is the provenance of one package installation: what was asked
// for, where it landed, and whether this Install actually built it.
type Record struct {
	// SpecText is the package's root constraints in spec syntax.
	SpecText string
	// Prefix is the installation directory (the external's own path for
	// external packages).
	Prefix string
	// Cached is true when a previous build satisfied the request and no
	// rebuild happened.
	Cached bool
	// External is true when the package came from the system installation
	// rather than the build system (never built, never cached).
	External bool
	// Elapsed is the simulated build duration spent by *this* Install;
	// zero for cached and external packages.
	Elapsed time.Duration
	// Hash is the spec's DAG hash — the install-tree cache key.
	Hash string
	// Steps is the build command script (see BuildCommands).
	Steps []string
}

// State names the record's disposition: "built", "cached" or "external".
func (r *Record) State() string {
	switch {
	case r.External:
		return "external"
	case r.Cached:
		return "cached"
	default:
		return "built"
	}
}

// TotalBuildTime sums the simulated build time actually spent by an
// Install — cached and external records cost nothing. This is the E9
// ablation's metric: the price of RebuildEveryRun over trusting the cache.
func TotalBuildTime(records []*Record) time.Duration {
	var total time.Duration
	for _, r := range records {
		if r == nil || r.Cached || r.External {
			continue
		}
		total += r.Elapsed
	}
	return total
}

// Summary renders the records' dispositions as "N built, N cached,
// N external" for CLI output and perflog extras.
func Summary(records []*Record) string {
	var built, cached, external int
	for _, r := range records {
		if r == nil {
			continue
		}
		switch {
		case r.External:
			external++
		case r.Cached:
			cached++
		default:
			built++
		}
	}
	return fmt.Sprintf("%d built, %d cached, %d external", built, cached, external)
}

// Builder installs concrete specs into an install tree.
type Builder struct {
	// InstallTree is the root directory of the build cache; one prefix
	// per package, named name-version-hash.
	InstallTree string
	// Repo supplies the build recipes.
	Repo *repo.Repository
	// RebuildEveryRun enforces Principle 3: the root package is rebuilt
	// even when its prefix is already in the tree. Dependencies still
	// come from the cache — the binary under test is always fresh, its
	// toolchain closure is reused.
	RebuildEveryRun bool
	// Workers bounds the goroutine pool building independent DAG nodes
	// concurrently (defaults to min(NumCPU, 8)).
	Workers int
	// Retry is applied per DAG node to transient install failures (a
	// flaky fetch, a filesystem hiccup). Failed attempts never reach the
	// install tree — prefixes materialise atomically only on success —
	// so retrying cannot poison the DAG-hash cache. The zero policy
	// means a single attempt.
	Retry retry.Policy
}

// NewBuilder returns a Builder over the given install tree and recipe
// repository.
func NewBuilder(installTree string, r *repo.Repository) *Builder {
	return &Builder{InstallTree: installTree, Repo: r}
}

func (b *Builder) workers() int {
	if b.Workers > 0 {
		return b.Workers
	}
	n := runtime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Prefix returns the install prefix a concrete spec maps to.
func (b *Builder) Prefix(s *spec.Spec) string {
	return PrefixIn(b.InstallTree, s)
}

// prefixLocks serialises installs into the same prefix across every
// Builder in the process, so concurrent Installs sharing a tree never
// race on a prefix. (Cross-process safety comes from the atomic
// stage-and-rename install below.)
var prefixLocks sync.Map // cleaned prefix path -> *sync.Mutex

func lockPrefix(prefix string) *sync.Mutex {
	m, _ := prefixLocks.LoadOrStore(filepath.Clean(prefix), &sync.Mutex{})
	return m.(*sync.Mutex)
}

// Install walks the concrete spec's dependency DAG in topological order
// and installs every package, returning one Record per DAG node in
// dependency-before-dependent order with the root last. Nodes whose
// dependencies are all installed build concurrently on the worker pool.
// It is InstallContext with a background context.
func (b *Builder) Install(root *spec.Spec) ([]*Record, error) {
	return b.InstallContext(context.Background(), root)
}

// InstallContext is Install with span tracing: each DAG node gets a
// child span ("build:<name>") under the context's current span, tagged
// with the node's hash and disposition, and the cache hit/miss counters
// are bumped per node.
func (b *Builder) InstallContext(ctx context.Context, root *spec.Spec) ([]*Record, error) {
	if root == nil {
		return nil, fmt.Errorf("buildsys: nil spec")
	}
	if !root.Concrete && !root.External {
		return nil, fmt.Errorf("buildsys: spec %q is not concrete — concretize it first", root.RootString())
	}
	if err := root.Validate(); err != nil {
		return nil, fmt.Errorf("buildsys: %w", err)
	}
	if b.Repo == nil {
		return nil, fmt.Errorf("buildsys: builder has no recipe repository")
	}
	if b.InstallTree == "" {
		return nil, fmt.Errorf("buildsys: builder has no install tree")
	}
	if err := os.MkdirAll(b.InstallTree, 0o755); err != nil {
		return nil, fmt.Errorf("buildsys: %w", err)
	}

	// Deterministic post-order: dependencies before dependents, root
	// last (the Runner takes records[len-1] as the benchmark's build).
	var order []*spec.Spec
	seen := map[string]bool{}
	var walk func(*spec.Spec)
	walk = func(s *spec.Spec) {
		if seen[s.Name] {
			return
		}
		seen[s.Name] = true
		for _, dn := range s.DepNames() {
			walk(s.Deps[dn])
		}
		order = append(order, s)
	}
	walk(root)

	// Build in topological waves: every node whose dependencies are
	// already installed is independent of the rest of its wave, so the
	// wave runs concurrently under the bounded worker pool.
	installed := map[string]*Record{}
	for len(installed) < len(order) {
		var wave []*spec.Spec
		for _, s := range order {
			if installed[s.Name] != nil {
				continue
			}
			ready := true
			for _, dn := range s.DepNames() {
				if installed[dn] == nil {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, s)
			}
		}
		if len(wave) == 0 {
			return nil, fmt.Errorf("buildsys: dependency cycle in %q", root.RootString())
		}
		recs := make([]*Record, len(wave))
		errs := make([]error, len(wave))
		sem := make(chan struct{}, b.workers())
		var wg sync.WaitGroup
		for i, s := range wave {
			wg.Add(1)
			go func(i int, s *spec.Spec) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				sctx, span := telemetry.Start(ctx, "build:"+s.Name)
				recs[i], errs[i] = b.installNodeRetrying(sctx, s, s == root)
				if rec := recs[i]; rec != nil {
					span.SetAttr("state", rec.State())
					span.SetAttr("hash", rec.Hash)
					metricInstalls.With(rec.State()).Inc()
					switch {
					case rec.External:
					case rec.Cached:
						metricCacheHits.Inc()
					default:
						metricCacheMisses.Inc()
					}
				}
				span.End(errs[i])
			}(i, s)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, err
			}
			installed[wave[i].Name] = recs[i]
		}
	}

	out := make([]*Record, 0, len(order))
	for _, s := range order {
		out = append(out, installed[s.Name])
	}
	return out, nil
}

// installNodeRetrying wraps installNode in the builder's retry policy:
// transient failures (including injected ones) are retried with
// backoff, each retry visible as a child span tagged with its attempt
// number.
func (b *Builder) installNodeRetrying(ctx context.Context, s *spec.Spec, isRoot bool) (*Record, error) {
	var rec *Record
	err := b.Retry.Do(ctx, "buildsys.install", func(actx context.Context, attempt int) error {
		if attempt > 1 {
			var span *telemetry.Span
			actx, span = telemetry.Start(actx, "build:"+s.Name+".retry", telemetry.Int("attempt", attempt))
			defer func() { span.End(nil) }()
		}
		var err error
		rec, err = b.installNode(actx, s, isRoot)
		return err
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// installNode installs one DAG node, consulting the cache first. The
// "buildsys.install" injection point models a build that fails for
// reasons unrelated to the spec (network fetch, disk, OOM).
func (b *Builder) installNode(ctx context.Context, s *spec.Spec, isRoot bool) (*Record, error) {
	if err := faultinject.FireContext(ctx, "buildsys.install"); err != nil {
		return nil, fmt.Errorf("buildsys: install %s: %w", s.Name, err)
	}
	if s.External {
		// System-provided installation: nothing to build (the paper's
		// packages.yaml externals). Its path is its prefix.
		return &Record{SpecText: s.RootString(), Prefix: s.ExternalPath, External: true, Hash: s.DAGHash()}, nil
	}
	pkg, err := b.Repo.Get(s.Name)
	if err != nil {
		return nil, fmt.Errorf("buildsys: %w", err)
	}
	steps, err := BuildCommands(pkg, s)
	if err != nil {
		return nil, err
	}
	hash := s.DAGHash()
	prefix := b.Prefix(s)

	lock := lockPrefix(prefix)
	lock.Lock()
	defer lock.Unlock()

	if !(isRoot && b.RebuildEveryRun) {
		if m, err := ReadManifest(prefix); err == nil && m.Hash == hash {
			return &Record{SpecText: s.RootString(), Prefix: prefix, Cached: true, Hash: hash, Steps: m.Commands}, nil
		}
	}

	elapsed := SimulatedBuildTime(pkg)
	m := &Manifest{
		Spec:         s.String(),
		Root:         s.RootString(),
		Hash:         hash,
		BuildSystem:  pkg.BuildSystem,
		Commands:     steps,
		ElapsedS:     elapsed.Seconds(),
		Dependencies: map[string]string{},
		CreatedAt:    time.Now().UTC().Format(time.RFC3339),
	}
	for _, dn := range s.DepNames() {
		m.Dependencies[dn] = s.Deps[dn].DAGHash()
	}
	if err := b.stageInstall(s, prefix, m); err != nil {
		return nil, err
	}
	return &Record{SpecText: s.RootString(), Prefix: prefix, Elapsed: elapsed, Hash: hash, Steps: steps}, nil
}

// stageInstall materialises the prefix atomically: populate a staging
// directory beside it, then rename into place, so readers never observe
// a half-written prefix even across processes.
func (b *Builder) stageInstall(s *spec.Spec, prefix string, m *Manifest) error {
	stage, err := os.MkdirTemp(b.InstallTree, ".stage-"+s.Name+"-")
	if err != nil {
		return fmt.Errorf("buildsys: %w", err)
	}
	defer os.RemoveAll(stage)
	if err := os.MkdirAll(filepath.Join(stage, "bin"), 0o755); err != nil {
		return fmt.Errorf("buildsys: %w", err)
	}
	// The simulated binary: the executable path the Runner launches,
	// carrying the provenance hash it was "compiled" from.
	exe := fmt.Sprintf("#!/bin/sh\n# simulated build of %s (dag hash %s)\n", m.Root, m.Hash)
	if err := os.WriteFile(filepath.Join(stage, "bin", s.Name), []byte(exe), 0o755); err != nil {
		return fmt.Errorf("buildsys: %w", err)
	}
	if err := WriteManifest(stage, m); err != nil {
		return err
	}
	if err := os.RemoveAll(prefix); err != nil {
		return fmt.Errorf("buildsys: %w", err)
	}
	if err := os.Rename(stage, prefix); err != nil {
		return fmt.Errorf("buildsys: %w", err)
	}
	return nil
}

// SimulatedBuildTime derives the deterministic build duration from the
// recipe's dimensionless BuildCost (one cost unit = one second). No real
// time passes — Install records the figure without sleeping, which is
// what lets E9 measure the rebuild-every-run ablation instantly.
func SimulatedBuildTime(pkg *repo.Package) time.Duration {
	if pkg.BuildCost <= 0 {
		return 0
	}
	return time.Duration(pkg.BuildCost * float64(time.Second))
}
