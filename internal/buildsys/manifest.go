package buildsys

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the provenance file written into every built prefix —
// Principle 4's record that "the steps to reproduce the binary are
// known" long after the build (the paper's archaeological
// reproducibility; Spack's .spack/spec.json equivalent).
const ManifestName = "manifest.json"

// Manifest is the JSON build-provenance record of one installed prefix.
type Manifest struct {
	// Spec is the full concrete spec text, dependencies included.
	Spec string `json:"spec"`
	// Root is the package's own constraints without dependencies.
	Root string `json:"root"`
	// Hash is the DAG hash the prefix is keyed on.
	Hash string `json:"hash"`
	// BuildSystem is the recipe's build tool.
	BuildSystem string `json:"build_system"`
	// Commands is the exact build script (see BuildCommands).
	Commands []string `json:"commands"`
	// ElapsedS is the simulated build duration in seconds.
	ElapsedS float64 `json:"elapsed_s"`
	// Dependencies maps each direct dependency to its own DAG hash, so
	// the full provenance chain can be walked prefix to prefix.
	Dependencies map[string]string `json:"dependencies"`
	// CreatedAt is the wall-clock build time, RFC 3339 UTC.
	CreatedAt string `json:"created_at"`
}

// WriteManifest writes the manifest into a prefix (or staging dir).
func WriteManifest(prefix string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("buildsys: encoding manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(prefix, ManifestName), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("buildsys: %w", err)
	}
	return nil
}

// ReadManifest loads the manifest of an installed prefix. A missing or
// unreadable manifest means the prefix is not a valid cache entry.
func ReadManifest(prefix string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(prefix, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("buildsys: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("buildsys: %s: corrupt manifest: %w", prefix, err)
	}
	if m.Hash == "" {
		return nil, fmt.Errorf("buildsys: %s: manifest missing hash", prefix)
	}
	return &m, nil
}
