package buildsys

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/concretize"
	"repro/internal/env"
	"repro/internal/faultinject"
	"repro/internal/repo"
	"repro/internal/retry"
	"repro/internal/spec"
)

// concretized resolves a spec text against a builtin system environment,
// exactly as the Runner does before handing the DAG to the builder.
func concretized(t *testing.T, system, text string) *spec.Spec {
	t.Helper()
	builtin := repo.Builtin()
	cfg := env.UKRegistry().ForSystem(system)
	res, err := concretize.Concretize(spec.MustParse(text), cfg.ConcretizeOptions(builtin, "x86_64"))
	if err != nil {
		t.Fatal(err)
	}
	return res.Spec
}

func TestInstallPopulatesTree(t *testing.T) {
	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	s := concretized(t, "archer2", "babelstream model=omp")
	records, err := b.Install(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatalf("records = %d, want the root and its closure", len(records))
	}
	// Root last, dependencies before dependents.
	root := records[len(records)-1]
	if !strings.HasPrefix(root.SpecText, "babelstream@") {
		t.Errorf("last record = %q, want the root", root.SpecText)
	}
	// Every built record has a live prefix with the simulated binary and
	// a manifest; the root's binary is what the Runner launches.
	for _, r := range records {
		if r.External {
			if r.Cached {
				t.Errorf("%s: external record marked cached", r.SpecText)
			}
			continue
		}
		if r.Cached {
			t.Errorf("%s: cached on a cold tree", r.SpecText)
		}
		name := strings.SplitN(r.SpecText, "@", 2)[0]
		if _, err := os.Stat(filepath.Join(r.Prefix, "bin", name)); err != nil {
			t.Errorf("%s: missing binary: %v", r.SpecText, err)
		}
		if _, err := os.Stat(filepath.Join(r.Prefix, ManifestName)); err != nil {
			t.Errorf("%s: missing manifest: %v", r.SpecText, err)
		}
		if r.Elapsed <= 0 {
			t.Errorf("%s: built record has no simulated elapsed", r.SpecText)
		}
		if len(r.Steps) == 0 {
			t.Errorf("%s: no build steps recorded", r.SpecText)
		}
	}
	if TotalBuildTime(records) <= 0 {
		t.Error("cold install reports zero build time")
	}
}

func TestInstallCacheHit(t *testing.T) {
	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	s := concretized(t, "archer2", "babelstream model=omp")
	if _, err := b.Install(s); err != nil {
		t.Fatal(err)
	}
	records, err := b.Install(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if r.External {
			continue
		}
		if !r.Cached {
			t.Errorf("%s: rebuilt on a warm tree", r.SpecText)
		}
		if r.Elapsed != 0 {
			t.Errorf("%s: cached record charges %v build time", r.SpecText, r.Elapsed)
		}
		if len(r.Steps) == 0 {
			t.Errorf("%s: cached record lost its command provenance", r.SpecText)
		}
	}
	if got := TotalBuildTime(records); got != 0 {
		t.Errorf("warm TotalBuildTime = %v, want 0", got)
	}
}

func TestCacheMissOnChangedSpec(t *testing.T) {
	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	if _, err := b.Install(concretized(t, "archer2", "babelstream model=omp")); err != nil {
		t.Fatal(err)
	}
	// A different variant is a different DAG hash: a fresh prefix, not a
	// cache hit on the omp build.
	records, err := b.Install(concretized(t, "archer2", "babelstream model=kokkos"))
	if err != nil {
		t.Fatal(err)
	}
	root := records[len(records)-1]
	if root.Cached {
		t.Error("model=kokkos hit the model=omp cache entry")
	}
}

func TestRebuildEveryRunForcesRootRebuild(t *testing.T) {
	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	s := concretized(t, "archer2", "babelstream model=omp")
	if _, err := b.Install(s); err != nil {
		t.Fatal(err)
	}
	b.RebuildEveryRun = true
	records, err := b.Install(s)
	if err != nil {
		t.Fatal(err)
	}
	root := records[len(records)-1]
	if root.Cached {
		t.Error("RebuildEveryRun did not rebuild the root")
	}
	if root.Elapsed <= 0 {
		t.Error("forced rebuild charges no simulated time")
	}
	// Dependencies still come from the cache — only the benchmark binary
	// is rebuilt (the E9 ablation's cost model).
	for _, r := range records[:len(records)-1] {
		if !r.Cached && !r.External {
			t.Errorf("%s: dependency rebuilt under RebuildEveryRun", r.SpecText)
		}
	}
	// The ablation's headline: rebuilding every run is strictly dearer
	// than trusting the cache.
	b.RebuildEveryRun = false
	cached, err := b.Install(s)
	if err != nil {
		t.Fatal(err)
	}
	if TotalBuildTime(cached) >= TotalBuildTime(records) {
		t.Errorf("cached reinstall (%v) not cheaper than RebuildEveryRun (%v)",
			TotalBuildTime(cached), TotalBuildTime(records))
	}
}

func TestInstallDeterminism(t *testing.T) {
	// Same spec, two trees: identical record order, spec texts, hashes,
	// relative prefixes and command scripts.
	s := concretized(t, "archer2", "babelstream model=omp")
	var shapes [2][]string
	for i := 0; i < 2; i++ {
		tree := t.TempDir()
		records, err := NewBuilder(tree, repo.Builtin()).Install(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range records {
			rel := r.Prefix
			if !r.External {
				var err error
				if rel, err = filepath.Rel(tree, r.Prefix); err != nil {
					t.Fatal(err)
				}
			}
			shapes[i] = append(shapes[i], r.SpecText+"|"+r.Hash+"|"+rel+"|"+strings.Join(r.Steps, ";"))
		}
	}
	if !reflect.DeepEqual(shapes[0], shapes[1]) {
		t.Errorf("installs diverge:\n%v\nvs\n%v", shapes[0], shapes[1])
	}
}

func TestExternalsAreNotBuilt(t *testing.T) {
	// hpgmg on archer2 resolves cray-mpich and python to externals.
	tree := t.TempDir()
	s := concretized(t, "archer2", "hpgmg%gcc")
	records, err := NewBuilder(tree, repo.Builtin()).Install(s)
	if err != nil {
		t.Fatal(err)
	}
	externals := 0
	for _, r := range records {
		if !r.External {
			continue
		}
		externals++
		if r.Prefix == "" {
			t.Errorf("%s: external without a system path", r.SpecText)
		}
		if strings.HasPrefix(r.Prefix, tree) {
			t.Errorf("%s: external landed inside the install tree", r.SpecText)
		}
		if r.Elapsed != 0 {
			t.Errorf("%s: external charges build time", r.SpecText)
		}
	}
	if externals < 2 {
		t.Errorf("externals = %d, want cray-mpich and python", externals)
	}
}

func TestManifestProvenance(t *testing.T) {
	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	s := concretized(t, "archer2", "babelstream model=omp")
	records, err := b.Install(s)
	if err != nil {
		t.Fatal(err)
	}
	root := records[len(records)-1]
	m, err := ReadManifest(root.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hash != root.Hash || m.Hash != s.DAGHash() {
		t.Errorf("manifest hash %q, record %q, spec %q", m.Hash, root.Hash, s.DAGHash())
	}
	if m.Spec != s.String() {
		t.Errorf("manifest spec = %q", m.Spec)
	}
	if m.BuildSystem != "cmake" {
		t.Errorf("build system = %q", m.BuildSystem)
	}
	if !reflect.DeepEqual(m.Commands, root.Steps) {
		t.Errorf("manifest commands diverge from record steps")
	}
	if m.ElapsedS <= 0 || m.CreatedAt == "" {
		t.Errorf("manifest missing timing: %+v", m)
	}
	// Dependency hashes chain the provenance across prefixes.
	for _, dn := range s.DepNames() {
		if m.Dependencies[dn] != s.Deps[dn].DAGHash() {
			t.Errorf("dependency %s hash = %q, want %q", dn, m.Dependencies[dn], s.Deps[dn].DAGHash())
		}
	}
}

func TestInstallRejectsBadInput(t *testing.T) {
	b := NewBuilder(t.TempDir(), repo.Builtin())
	if _, err := b.Install(nil); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := b.Install(spec.MustParse("babelstream model=omp")); err == nil {
		t.Error("abstract spec accepted")
	}
	// A concrete spec naming a package with no recipe cannot build.
	ghost := spec.New("no-such-package")
	ghost.Version = spec.ExactVersion("1.0")
	ghost.Concrete = true
	if _, err := b.Install(ghost); err == nil {
		t.Error("missing recipe accepted")
	}
	nb := NewBuilder("", repo.Builtin())
	if _, err := nb.Install(concretized(t, "archer2", "stream")); err == nil {
		t.Error("empty install tree accepted")
	}
}

func TestBuildCommandsPerBuildSystem(t *testing.T) {
	builtin := repo.Builtin()
	cases := []struct {
		system string
		text   string
		pkg    string
		want   []string
	}{
		{"archer2", "babelstream model=omp", "babelstream", []string{"cmake ..", "-DMODEL=omp", "-DCMAKE_INSTALL_PREFIX=${PREFIX}", "cmake --install ."}},
		{"archer2", "hpgmg%gcc", "hpgmg", []string{"make -j${BUILD_JOBS}", "PREFIX=${PREFIX}"}},
		{"archer2", "hpcg variant=matrix-free", "hpcg", []string{"./configure", "--prefix=${PREFIX}", "--with-variant=matrix-free"}},
	}
	for _, c := range cases {
		s := concretized(t, c.system, c.text)
		node := s.Lookup(c.pkg)
		pkg, err := builtin.Get(c.pkg)
		if err != nil {
			t.Fatal(err)
		}
		cmds, err := BuildCommands(pkg, node)
		if err != nil {
			t.Fatal(err)
		}
		script := strings.Join(cmds, "\n")
		for _, want := range c.want {
			if !strings.Contains(script, want) {
				t.Errorf("%s (%s) script missing %q:\n%s", c.pkg, pkg.BuildSystem, want, script)
			}
		}
	}
	// Bundle recipes emit a no-build script.
	cuda, err := builtin.Get("cuda")
	if err != nil {
		t.Fatal(err)
	}
	node := spec.New("cuda")
	cmds, err := BuildCommands(cuda, node)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(cmds, "\n"), "bundle package") {
		t.Errorf("bundle script = %v", cmds)
	}
	// Unknown build systems are an error, not a silent guess.
	bad := &repo.Package{Name: "mystery", BuildSystem: "scons"}
	if _, err := BuildCommands(bad, node); err == nil {
		t.Error("unknown build system accepted")
	}
}

func TestSummaryAndState(t *testing.T) {
	records := []*Record{
		{SpecText: "a"},
		{SpecText: "b", Cached: true},
		{SpecText: "c", External: true},
		nil,
	}
	if got := Summary(records); got != "1 built, 1 cached, 1 external" {
		t.Errorf("Summary = %q", got)
	}
	for want, r := range map[string]*Record{
		"built":    records[0],
		"cached":   records[1],
		"external": records[2],
	} {
		if r.State() != want {
			t.Errorf("State() = %q, want %q", r.State(), want)
		}
	}
}

func TestInstallRetriesTransientFault(t *testing.T) {
	// One injected transient failure on the install point: the retry
	// policy absorbs it and the install completes as if nothing happened.
	rules, err := faultinject.ParseSchedule("buildsys.install:error:times=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Load(1, rules); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)

	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	b.Retry = retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	records, err := b.Install(concretized(t, "archer2", "babelstream model=omp"))
	if err != nil {
		t.Fatalf("install with one transient fault: %v", err)
	}
	for _, r := range records {
		if r.External {
			continue
		}
		if _, err := os.Stat(filepath.Join(r.Prefix, ManifestName)); err != nil {
			t.Errorf("%s: retried install left no manifest: %v", r.SpecText, err)
		}
	}
}

func TestPermanentFaultDoesNotPoisonCache(t *testing.T) {
	// A permanent install failure must surface as a typed fault without
	// retries, and — because prefixes materialise atomically — must leave
	// nothing behind that a later install could mistake for a cache hit.
	rules, err := faultinject.ParseSchedule("buildsys.install:error:times=1:permanent=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Load(1, rules); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)

	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	b.Retry = retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	s := concretized(t, "archer2", "babelstream model=omp")
	if _, err := b.Install(s); err == nil {
		t.Fatal("install with permanent fault succeeded")
	} else if !faultinject.Is(err) {
		t.Fatalf("error not a typed fault: %v", err)
	}

	faultinject.Reset()
	records, err := b.Install(s)
	if err != nil {
		t.Fatalf("reinstall after fault: %v", err)
	}
	// Whatever claims to be cached must actually be installed: a cached
	// record with no manifest would mean the failed attempt poisoned the
	// DAG-hash cache.
	for _, r := range records {
		if r.External {
			continue
		}
		if _, err := os.Stat(filepath.Join(r.Prefix, ManifestName)); err != nil {
			t.Errorf("%s (%s): no manifest on disk: %v", r.SpecText, r.State(), err)
		}
	}
	root := records[len(records)-1]
	if _, err := os.Stat(filepath.Join(root.Prefix, ManifestName)); err != nil {
		t.Errorf("root missing after recovery install: %v", err)
	}
}
