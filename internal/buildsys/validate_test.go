package buildsys

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/repo"
	"repro/internal/spec"
)

func TestValidateCleanTree(t *testing.T) {
	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	s := concretized(t, "archer2", "babelstream model=omp")
	if _, err := b.Install(s); err != nil {
		t.Fatal(err)
	}
	if err := Validate(tree, s); err != nil {
		t.Fatalf("freshly installed tree failed validation: %v", err)
	}
}

func TestValidateEmptyTreePasses(t *testing.T) {
	// Prefixes that do not exist are not stale — the build stage will
	// create them, which is the fully reproducible path.
	s := concretized(t, "archer2", "babelstream model=omp")
	if err := Validate(t.TempDir(), s); err != nil {
		t.Fatalf("empty tree failed validation: %v", err)
	}
}

func TestValidateTamperedManifestHash(t *testing.T) {
	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	s := concretized(t, "archer2", "babelstream model=omp")
	if _, err := b.Install(s); err != nil {
		t.Fatal(err)
	}
	// Rewrite the root prefix's manifest with a different hash: the
	// stale-binary postmortem (binary on disk no longer tied to the spec).
	prefix := PrefixIn(tree, s)
	m, err := ReadManifest(prefix)
	if err != nil {
		t.Fatal(err)
	}
	m.Hash = "deadbeefdeadbeef"
	if err := WriteManifest(prefix, m); err != nil {
		t.Fatal(err)
	}
	err = Validate(tree, s)
	var stale *StaleBinaryError
	if !errors.As(err, &stale) {
		t.Fatalf("tampered manifest: got %v, want *StaleBinaryError", err)
	}
	if stale.Package != s.Name || stale.GotHash != "deadbeefdeadbeef" || stale.WantHash != s.DAGHash() {
		t.Fatalf("error fields: %+v", stale)
	}
}

func TestValidateCorruptManifest(t *testing.T) {
	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	s := concretized(t, "archer2", "babelstream model=omp")
	if _, err := b.Install(s); err != nil {
		t.Fatal(err)
	}
	prefix := PrefixIn(tree, s)
	if err := os.WriteFile(filepath.Join(prefix, ManifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stale *StaleBinaryError
	if err := Validate(tree, s); !errors.As(err, &stale) {
		t.Fatalf("corrupt manifest: got %v, want *StaleBinaryError", err)
	}
	if stale.Reason == "" || stale.GotHash != "" {
		t.Fatalf("error fields: %+v", stale)
	}
}

func TestValidateMissingBinary(t *testing.T) {
	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	s := concretized(t, "archer2", "babelstream model=omp")
	if _, err := b.Install(s); err != nil {
		t.Fatal(err)
	}
	prefix := PrefixIn(tree, s)
	if err := os.Remove(filepath.Join(prefix, "bin", s.Name)); err != nil {
		t.Fatal(err)
	}
	var stale *StaleBinaryError
	if err := Validate(tree, s); !errors.As(err, &stale) {
		t.Fatalf("missing binary: got %v, want *StaleBinaryError", err)
	}
}

func TestValidateChecksDependencies(t *testing.T) {
	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	s := concretized(t, "archer2", "babelstream model=omp")
	if _, err := b.Install(s); err != nil {
		t.Fatal(err)
	}
	// Tamper with a dependency prefix, not the root: RebuildEveryRun only
	// rebuilds the root, so a stale cached dep is exactly the silent
	// failure pre-flight validation exists to catch.
	var depPrefix string
	for _, dn := range s.DepNames() {
		d := s.Deps[dn]
		if d.External {
			continue
		}
		depPrefix = PrefixIn(tree, d)
		break
	}
	if depPrefix == "" {
		t.Skip("spec has no non-external dependencies")
	}
	m, err := ReadManifest(depPrefix)
	if err != nil {
		t.Fatal(err)
	}
	m.Hash = "0000000000000000"
	if err := WriteManifest(depPrefix, m); err != nil {
		t.Fatal(err)
	}
	var stale *StaleBinaryError
	if err := Validate(tree, s); !errors.As(err, &stale) {
		t.Fatalf("stale dep: got %v, want *StaleBinaryError", err)
	}
	if stale.Prefix != depPrefix {
		t.Fatalf("stale prefix = %s, want dep prefix %s", stale.Prefix, depPrefix)
	}
}

func TestValidateRejectsAbstractSpec(t *testing.T) {
	raw := spec.MustParse("babelstream")
	if err := Validate(t.TempDir(), raw); err == nil {
		t.Fatal("abstract spec accepted")
	}
	if err := Validate(t.TempDir(), nil); err == nil {
		t.Fatal("nil spec accepted")
	}
}

func TestStaleBinaryErrorMessage(t *testing.T) {
	e := &StaleBinaryError{Package: "gcc", Prefix: "/tree/gcc-11-abc", WantHash: "abc", GotHash: "def", Reason: "hash mismatch"}
	msg := e.Error()
	for _, want := range []string{"gcc", "/tree/gcc-11-abc", "abc", "def", "hash mismatch"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}
