package buildsys

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/repo"
	"repro/internal/spec"
)

// TestConcurrentInstallSharedTree drives many Installs — same spec,
// different specs, several Builder instances — into one shared install
// tree at once. Run under -race this is the per-prefix locking proof:
// no torn prefixes, no double builds of one hash in a single Install,
// and every resulting record agrees on where each hash lives.
func TestConcurrentInstallSharedTree(t *testing.T) {
	tree := t.TempDir()
	builtin := repo.Builtin()
	specs := []*spec.Spec{
		concretized(t, "archer2", "babelstream model=omp"),
		concretized(t, "archer2", "babelstream model=kokkos"),
		concretized(t, "archer2", "hpgmg%gcc"),
		concretized(t, "archer2", "hpcg variant=matrix-free"),
		concretized(t, "csd3", "stream"),
	}
	const installers = 4
	var wg sync.WaitGroup
	errs := make(chan error, installers*len(specs))
	results := make(chan *Record, installers*len(specs)*8)
	for i := 0; i < installers; i++ {
		// Half the installers share one Builder, half get their own —
		// both shapes must be race-clean on a shared tree.
		b := NewBuilder(tree, builtin)
		b.RebuildEveryRun = i%2 == 0
		for _, s := range specs {
			wg.Add(1)
			go func(b *Builder, s *spec.Spec) {
				defer wg.Done()
				records, err := b.Install(s)
				if err != nil {
					errs <- err
					return
				}
				if records[len(records)-1].Hash != s.DAGHash() {
					errs <- fmt.Errorf("root hash mismatch for %s", s.RootString())
				}
				for _, r := range records {
					results <- r
				}
			}(b, s)
		}
	}
	wg.Wait()
	close(errs)
	close(results)
	for err := range errs {
		t.Fatal(err)
	}
	// Every record for a given hash must name the same prefix, and every
	// prefix must still hold a manifest with that hash after the storm.
	prefixes := map[string]string{}
	for r := range results {
		if r.External {
			continue
		}
		if prev, ok := prefixes[r.Hash]; ok && prev != r.Prefix {
			t.Fatalf("hash %s maps to both %s and %s", r.Hash, prev, r.Prefix)
		}
		prefixes[r.Hash] = r.Prefix
	}
	for hash, prefix := range prefixes {
		m, err := ReadManifest(prefix)
		if err != nil {
			t.Errorf("%s: %v", prefix, err)
			continue
		}
		if m.Hash != hash {
			t.Errorf("%s: manifest hash %s, want %s", prefix, m.Hash, hash)
		}
	}
}

// TestConcurrentSameSpec hammers one spec from many goroutines through a
// single Builder: the per-prefix lock must serialise the first build and
// every later Install must see a coherent cache entry.
func TestConcurrentSameSpec(t *testing.T) {
	tree := t.TempDir()
	b := NewBuilder(tree, repo.Builtin())
	s := concretized(t, "archer2", "babelstream model=omp")
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Install(s); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The tree has settled into exactly one coherent entry per node.
	records, err := b.Install(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if !r.Cached && !r.External {
			t.Errorf("%s: not cached after the storm", r.SpecText)
		}
	}
}
