package buildsys

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/spec"
)

// StaleBinaryError reports a pre-flight validation failure: an installed
// prefix that the build cache would be consulted for no longer matches the
// currently concretized spec. This is the "stale binary" postmortem — a
// result produced from such a prefix cannot be tied back to the spec it
// claims, so the run is rejected before any stage executes rather than
// silently rebuilding or, worse, silently reusing.
type StaleBinaryError struct {
	Package  string // DAG node whose prefix failed validation
	Prefix   string // install prefix that was inspected
	WantHash string // DAG hash of the current concrete spec
	GotHash  string // hash recorded in the prefix manifest ("" if unreadable)
	Reason   string // human-readable mismatch description
}

func (e *StaleBinaryError) Error() string {
	return fmt.Sprintf("buildsys: stale binary for %s at %s: %s (want hash %s, manifest has %q)",
		e.Package, e.Prefix, e.Reason, e.WantHash, e.GotHash)
}

// PrefixIn returns the install prefix a concrete spec is keyed to inside
// an install tree — the same layout Builder.Prefix uses, exported so
// validation can locate prefixes without constructing a Builder.
func PrefixIn(tree string, s *spec.Spec) string {
	return filepath.Join(tree, fmt.Sprintf("%s-%s-%s", s.Name, s.Version.String(), s.DAGHash()))
}

// Validate walks a concrete spec DAG and checks every non-external node's
// installed prefix against the spec: the prefix manifest must be readable,
// its recorded DAG hash must equal the spec's current hash, and the
// simulated binary bin/<name> must exist. A prefix that does not exist is
// fine — the run's build stage will create it from scratch, which is the
// reproducible path. The first violation is returned as *StaleBinaryError.
func Validate(tree string, root *spec.Spec) error {
	if root == nil {
		return fmt.Errorf("buildsys: validate: nil spec")
	}
	if !root.Concrete && !root.External {
		return fmt.Errorf("buildsys: validate: spec %s is not concrete", root.Name)
	}
	seen := map[string]bool{}
	var walk func(s *spec.Spec) error
	walk = func(s *spec.Spec) error {
		if s == nil || seen[s.DAGHash()] {
			return nil
		}
		seen[s.DAGHash()] = true
		if !s.External {
			if err := validateNode(tree, s); err != nil {
				return err
			}
		}
		for _, dn := range s.DepNames() {
			if err := walk(s.Deps[dn]); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root)
}

func validateNode(tree string, s *spec.Spec) error {
	prefix := PrefixIn(tree, s)
	// Hold the same per-prefix lock installs take: stageInstall replaces
	// a prefix with RemoveAll + Rename, and validating mid-replacement
	// would misread a half-removed prefix as stale.
	lock := lockPrefix(prefix)
	lock.Lock()
	defer lock.Unlock()
	if _, err := os.Stat(prefix); os.IsNotExist(err) {
		return nil // never built here; the build stage will produce it
	}
	want := s.DAGHash()
	m, err := ReadManifest(prefix)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// The prefix vanished between the stat and the read — an
			// out-of-process rebuild is replacing it. Not installed from
			// this run's point of view; the build stage will produce it.
			return nil
		}
		return &StaleBinaryError{
			Package: s.Name, Prefix: prefix, WantHash: want,
			Reason: "prefix exists but its manifest is unreadable",
		}
	}
	if m.Hash != want {
		return &StaleBinaryError{
			Package: s.Name, Prefix: prefix, WantHash: want, GotHash: m.Hash,
			Reason: "manifest DAG hash does not match the concretized spec",
		}
	}
	if _, err := os.Stat(filepath.Join(prefix, "bin", s.Name)); err != nil {
		return &StaleBinaryError{
			Package: s.Name, Prefix: prefix, WantHash: want, GotHash: m.Hash,
			Reason: "installed binary bin/" + s.Name + " is missing",
		}
	}
	return nil
}
