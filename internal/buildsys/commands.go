package buildsys

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/repo"
	"repro/internal/spec"
)

// BuildCommands renders the command script that builds a concrete spec
// with its recipe's build system — Principle 2's "teach the build system"
// made inspectable. The script is deterministic in the spec alone:
// install-time paths appear as ${PREFIX}, ${BUILD_JOBS} and
// ${DEP_ROOT_<NAME>} placeholders so the same spec always yields the same
// commands, which is what makes them safe to cache in the manifest.
func BuildCommands(pkg *repo.Package, s *spec.Spec) ([]string, error) {
	if pkg == nil {
		return nil, fmt.Errorf("buildsys: nil package recipe")
	}
	if s == nil {
		return nil, fmt.Errorf("buildsys: nil spec")
	}
	header := fmt.Sprintf("# %s via %s", s.RootString(), pkg.BuildSystem)
	cc := s.Compiler.Name
	if cc == "" {
		cc = "cc"
	}
	switch pkg.BuildSystem {
	case "cmake":
		flags := []string{
			"-DCMAKE_BUILD_TYPE=Release",
			"-DCMAKE_INSTALL_PREFIX=${PREFIX}",
			"-DCMAKE_C_COMPILER=" + cc,
		}
		for _, vn := range s.VariantNames() {
			flags = append(flags, cmakeFlag(vn, s.Variants[vn]))
		}
		if roots := depRoots(s); len(roots) > 0 {
			flags = append(flags, "-DCMAKE_PREFIX_PATH="+strings.Join(roots, ";"))
		}
		return []string{
			header,
			"mkdir -p build && cd build",
			"cmake .. " + strings.Join(flags, " "),
			"cmake --build . -j${BUILD_JOBS}",
			"cmake --install .",
		}, nil
	case "autotools":
		flags := []string{"--prefix=${PREFIX}", "CC=" + cc}
		for _, vn := range s.VariantNames() {
			flags = append(flags, configureFlag(vn, s.Variants[vn]))
		}
		for _, dn := range s.DepNames() {
			flags = append(flags, fmt.Sprintf("--with-%s=%s", dn, depRootVar(dn)))
		}
		return []string{
			header,
			"./configure " + strings.Join(flags, " "),
			"make -j${BUILD_JOBS}",
			"make install",
		}, nil
	case "make":
		vars := []string{"CC=" + cc}
		for _, vn := range s.VariantNames() {
			vars = append(vars, makeVar(vn, s.Variants[vn]))
		}
		return []string{
			header,
			"make -j${BUILD_JOBS} " + strings.Join(vars, " "),
			"make install PREFIX=${PREFIX}",
		}, nil
	case "bundle":
		// Bundle packages (toolchains, meta-packages) install no code of
		// their own; their members are built by their own recipes.
		return []string{
			header,
			"# bundle package: no build step, members install via their own recipes",
			"mkdir -p ${PREFIX}/bin",
		}, nil
	default:
		return nil, fmt.Errorf("buildsys: %s: unknown build system %q", pkg.Name, pkg.BuildSystem)
	}
}

// cmakeFlag renders one variant as a -D definition.
func cmakeFlag(name string, v spec.VariantValue) string {
	if v.IsBool {
		val := "OFF"
		if v.Bool {
			val = "ON"
		}
		return fmt.Sprintf("-DENABLE_%s=%s", envName(name), val)
	}
	return fmt.Sprintf("-D%s=%s", envName(name), v.Str)
}

// configureFlag renders one variant as a ./configure switch.
func configureFlag(name string, v spec.VariantValue) string {
	if v.IsBool {
		if v.Bool {
			return "--enable-" + name
		}
		return "--disable-" + name
	}
	return fmt.Sprintf("--with-%s=%s", name, v.Str)
}

// makeVar renders one variant as a make variable assignment.
func makeVar(name string, v spec.VariantValue) string {
	if v.IsBool {
		val := "0"
		if v.Bool {
			val = "1"
		}
		return fmt.Sprintf("%s=%s", envName(name), val)
	}
	return fmt.Sprintf("%s=%s", envName(name), v.Str)
}

// depRoots lists ${DEP_ROOT_<NAME>} placeholders for the direct
// dependencies, sorted by name.
func depRoots(s *spec.Spec) []string {
	names := s.DepNames()
	out := make([]string, 0, len(names))
	for _, dn := range names {
		out = append(out, depRootVar(dn))
	}
	sort.Strings(out)
	return out
}

// depRootVar names the placeholder for a dependency's install prefix.
func depRootVar(dep string) string {
	return "${DEP_ROOT_" + envName(dep) + "}"
}

// envName uppercases a package or variant name into an environment-style
// identifier (dashes become underscores).
func envName(name string) string {
	return strings.ToUpper(strings.NewReplacer("-", "_", ".", "_").Replace(name))
}
