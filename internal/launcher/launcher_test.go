package launcher

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPlacementsBlockDistribution(t *testing.T) {
	nodes := []string{"nid000001", "nid000002", "nid000003", "nid000004"}
	// The paper's HPGMG layout: 8 tasks, 2 per node, 8 CPUs each.
	ps, err := Placements(nodes, Layout{NumTasks: 8, TasksPerNode: 2, CPUsPerTask: 8}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 8 {
		t.Fatalf("placements = %d", len(ps))
	}
	// Ranks 0,1 on node 0; 2,3 on node 1; etc.
	for rank, p := range ps {
		if p.Rank != rank {
			t.Errorf("rank %d mislabeled as %d", rank, p.Rank)
		}
		wantNode := nodes[rank/2]
		if p.Node != wantNode {
			t.Errorf("rank %d on %s, want %s", rank, p.Node, wantNode)
		}
		if len(p.CPUs) != 8 {
			t.Errorf("rank %d has %d cpus", rank, len(p.CPUs))
		}
	}
	// Second task on a node starts at CPU 8.
	if ps[1].CPUs[0] != 8 {
		t.Errorf("rank 1 first cpu = %d, want 8", ps[1].CPUs[0])
	}
	if ps[2].CPUs[0] != 0 {
		t.Errorf("rank 2 first cpu = %d, want 0 (fresh node)", ps[2].CPUs[0])
	}
}

func TestPlacementsNoCPUOverlapProperty(t *testing.T) {
	// Property: on any node, no CPU is assigned to two ranks, and no CPU
	// index exceeds the node size.
	f := func(tasksRaw, tpnRaw, cptRaw uint8) bool {
		numTasks := int(tasksRaw%32) + 1
		tpn := int(tpnRaw%8) + 1
		cpt := int(cptRaw%4) + 1
		coresPerNode := 64
		nodeCount := (numTasks + tpn - 1) / tpn
		nodes := make([]string, nodeCount)
		for i := range nodes {
			nodes[i] = strings.Repeat("n", i+1)
		}
		ps, err := Placements(nodes, Layout{NumTasks: numTasks, TasksPerNode: tpn, CPUsPerTask: cpt}, coresPerNode)
		if err != nil {
			// Only acceptable when the layout genuinely overflows.
			return tpn*cpt > coresPerNode
		}
		used := map[string]map[int]bool{}
		for _, p := range ps {
			if used[p.Node] == nil {
				used[p.Node] = map[int]bool{}
			}
			for _, c := range p.CPUs {
				if c < 0 || c >= coresPerNode {
					return false
				}
				if used[p.Node][c] {
					return false
				}
				used[p.Node][c] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementsErrors(t *testing.T) {
	nodes := []string{"a"}
	if _, err := Placements(nodes, Layout{NumTasks: 0}, 16); err == nil {
		t.Error("zero tasks accepted")
	}
	if _, err := Placements(nodes, Layout{NumTasks: 8, TasksPerNode: 2}, 16); err == nil {
		t.Error("insufficient nodes accepted")
	}
	if _, err := Placements(nodes, Layout{NumTasks: 1, TasksPerNode: 4, CPUsPerTask: 8}, 16); err == nil {
		t.Error("cpu oversubscription accepted")
	}
}

func TestSrunCommand(t *testing.T) {
	cmd := Srun{}.Command(Layout{NumTasks: 8, TasksPerNode: 2, CPUsPerTask: 8}, "./hpgmg-fv", []string{"7", "8"})
	for _, want := range []string{"srun", "--ntasks=8", "--ntasks-per-node=2", "--cpus-per-task=8", "--cpu-bind=cores", "./hpgmg-fv 7 8"} {
		if !strings.Contains(cmd, want) {
			t.Errorf("srun command missing %q: %s", want, cmd)
		}
	}
}

func TestMpirunCommand(t *testing.T) {
	cmd := Mpirun{}.Command(Layout{NumTasks: 40, TasksPerNode: 40, CPUsPerTask: 1}, "./xhpcg", nil)
	for _, want := range []string{"mpirun", "-np 40", "ppr:40:node:pe=1", "--bind-to core", "./xhpcg"} {
		if !strings.Contains(cmd, want) {
			t.Errorf("mpirun command missing %q: %s", want, cmd)
		}
	}
}

func TestAprunCommand(t *testing.T) {
	cmd := Aprun{}.Command(Layout{NumTasks: 64, TasksPerNode: 32, CPUsPerTask: 2}, "./babelstream", []string{"-s", "33554432"})
	for _, want := range []string{"aprun", "-n 64", "-N 32", "-d 2", "./babelstream -s 33554432"} {
		if !strings.Contains(cmd, want) {
			t.Errorf("aprun command missing %q: %s", want, cmd)
		}
	}
}

func TestLocalCommand(t *testing.T) {
	cmd := Local{}.Command(Layout{NumTasks: 1}, "./stream", nil)
	if cmd != "./stream" {
		t.Errorf("local command = %q", cmd)
	}
}

func TestFor(t *testing.T) {
	for _, name := range []string{"srun", "mpirun", "aprun", "local"} {
		l, err := For(name)
		if err != nil {
			t.Errorf("For(%q): %v", name, err)
			continue
		}
		if l.Name() != name {
			t.Errorf("For(%q).Name() = %q", name, l.Name())
		}
	}
	if _, err := For("flux"); err == nil {
		t.Error("unknown launcher accepted")
	}
}

func TestDefaultPacking(t *testing.T) {
	// TasksPerNode=0 fills by CPUs.
	ps, err := Placements([]string{"a", "b"}, Layout{NumTasks: 8, CPUsPerTask: 16}, 64)
	if err != nil {
		t.Fatal(err)
	}
	// 64/16 = 4 tasks per node: ranks 0-3 on a, 4-7 on b.
	if ps[3].Node != "a" || ps[4].Node != "b" {
		t.Errorf("packing wrong: %+v", ps)
	}
}
