// Package launcher builds the parallel-launch commands (srun, mpirun,
// aprun) the framework uses to start benchmark processes, and computes
// the rank→node/CPU placement those commands would produce. This is the
// "MPI distribution and affinity" half of the paper's §2.3 challenge (2).
package launcher

import (
	"fmt"
	"strings"
)

// Layout is the parallel execution layout of a run.
type Layout struct {
	NumTasks     int
	TasksPerNode int // 0 = fill nodes by CPUs
	CPUsPerTask  int // 0 = 1
}

// normalized returns the layout with defaults applied for coresPerNode.
func (l Layout) normalized(coresPerNode int) (Layout, error) {
	if l.NumTasks <= 0 {
		return l, fmt.Errorf("launcher: NumTasks must be positive")
	}
	if l.CPUsPerTask <= 0 {
		l.CPUsPerTask = 1
	}
	if l.TasksPerNode == 0 {
		l.TasksPerNode = coresPerNode / l.CPUsPerTask
		if l.TasksPerNode < 1 {
			l.TasksPerNode = 1
		}
	}
	if l.TasksPerNode*l.CPUsPerTask > coresPerNode {
		return l, fmt.Errorf("launcher: layout needs %d CPUs per node but nodes have %d",
			l.TasksPerNode*l.CPUsPerTask, coresPerNode)
	}
	return l, nil
}

// Placement binds one MPI rank to a node and a CPU set.
type Placement struct {
	Rank int
	Node string
	CPUs []int
}

// Placements computes block rank placement (ranks fill node 0 first) with
// sequential core binding, the default binding policy of the launchers
// modelled here.
func Placements(nodes []string, layout Layout, coresPerNode int) ([]Placement, error) {
	l, err := layout.normalized(coresPerNode)
	if err != nil {
		return nil, err
	}
	needNodes := (l.NumTasks + l.TasksPerNode - 1) / l.TasksPerNode
	if needNodes > len(nodes) {
		return nil, fmt.Errorf("launcher: layout needs %d nodes, allocation has %d", needNodes, len(nodes))
	}
	out := make([]Placement, 0, l.NumTasks)
	for rank := 0; rank < l.NumTasks; rank++ {
		nodeIdx := rank / l.TasksPerNode
		slot := rank % l.TasksPerNode
		cpus := make([]int, l.CPUsPerTask)
		for i := range cpus {
			cpus[i] = slot*l.CPUsPerTask + i
		}
		out = append(out, Placement{Rank: rank, Node: nodes[nodeIdx], CPUs: cpus})
	}
	return out, nil
}

// Launcher renders the launch command for one benchmark invocation.
type Launcher interface {
	// Name identifies the launcher ("srun", "mpirun", "aprun", "local").
	Name() string
	// Command renders the full launch command line.
	Command(layout Layout, exe string, args []string) string
}

// For resolves a launcher by name (as configured on a platform partition).
func For(name string) (Launcher, error) {
	switch name {
	case "srun":
		return Srun{}, nil
	case "mpirun":
		return Mpirun{}, nil
	case "aprun":
		return Aprun{}, nil
	case "local":
		return Local{}, nil
	default:
		return nil, fmt.Errorf("launcher: unknown launcher %q", name)
	}
}

// Srun is the SLURM launcher.
type Srun struct{}

// Name implements Launcher.
func (Srun) Name() string { return "srun" }

// Command implements Launcher.
func (s Srun) Command(l Layout, exe string, args []string) string {
	parts := []string{"srun", fmt.Sprintf("--ntasks=%d", l.NumTasks)}
	if l.TasksPerNode > 0 {
		parts = append(parts, fmt.Sprintf("--ntasks-per-node=%d", l.TasksPerNode))
	}
	if l.CPUsPerTask > 0 {
		parts = append(parts, fmt.Sprintf("--cpus-per-task=%d", l.CPUsPerTask))
	}
	parts = append(parts, "--cpu-bind=cores", exe)
	return strings.Join(append(parts, args...), " ")
}

// Mpirun is the Open MPI style launcher.
type Mpirun struct{}

// Name implements Launcher.
func (Mpirun) Name() string { return "mpirun" }

// Command implements Launcher.
func (m Mpirun) Command(l Layout, exe string, args []string) string {
	parts := []string{"mpirun", "-np", fmt.Sprintf("%d", l.NumTasks)}
	if l.TasksPerNode > 0 {
		pe := l.CPUsPerTask
		if pe <= 0 {
			pe = 1
		}
		parts = append(parts, fmt.Sprintf("--map-by ppr:%d:node:pe=%d", l.TasksPerNode, pe), "--bind-to core")
	}
	parts = append(parts, exe)
	return strings.Join(append(parts, args...), " ")
}

// Aprun is the Cray ALPS launcher (Isambard XCI).
type Aprun struct{}

// Name implements Launcher.
func (Aprun) Name() string { return "aprun" }

// Command implements Launcher.
func (a Aprun) Command(l Layout, exe string, args []string) string {
	parts := []string{"aprun", "-n", fmt.Sprintf("%d", l.NumTasks)}
	if l.TasksPerNode > 0 {
		parts = append(parts, "-N", fmt.Sprintf("%d", l.TasksPerNode))
	}
	if l.CPUsPerTask > 0 {
		parts = append(parts, "-d", fmt.Sprintf("%d", l.CPUsPerTask))
	}
	parts = append(parts, "-cc", "cpu", exe)
	return strings.Join(append(parts, args...), " ")
}

// Local runs the executable directly, for host execution.
type Local struct{}

// Name implements Launcher.
func (Local) Name() string { return "local" }

// Command implements Launcher.
func (Local) Command(_ Layout, exe string, args []string) string {
	return strings.Join(append([]string{exe}, args...), " ")
}
