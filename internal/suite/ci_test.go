package suite

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/postprocess"
)

// TestCIPipelineVision exercises the paper's concluding vision end to end:
// "a sweep of performance data across diverse computer systems ... run as
// part of a CI pipeline, and enable researchers to measure and track the
// performance portability of their applications over time."
//
// Two simulated "nightly" sweeps run the whole suite across the estate,
// appending to the same perflogs; the post-processing layer assimilates
// both nights and the regression checker confirms performance is stable
// run-over-run (the deterministic simulation guarantees it here — on real
// systems this is exactly the check that would alarm).
func TestCIPipelineVision(t *testing.T) {
	dir := t.TempDir()
	perflogs := filepath.Join(dir, "perflogs")
	runner := core.New(filepath.Join(dir, "install"), perflogs)
	base := time.Date(2023, 7, 7, 2, 0, 0, 0, time.UTC)

	type target struct {
		bench core.Benchmark
		sys   string
	}
	matrix := []target{
		{NewHPGMG(), "archer2"},
		{NewHPGMG(), "cosma8"},
		{NewHPGMG(), "csd3"},
		{NewHPGMG(), "isambard-macs:cascadelake"},
		{NewHPCG("original"), "isambard-macs:cascadelake"},
		{NewHPCG("matrix-free"), "archer2"},
		{NewBabelStream("omp"), "paderborn-milan"},
		{NewBabelStream("cuda"), "isambard-macs:volta"},
	}
	for night := 0; night < 2; night++ {
		nightTime := base.AddDate(0, 0, night)
		runner.Now = func() time.Time { return nightTime }
		for _, tg := range matrix {
			rep, err := runner.Run(tg.bench, core.Options{System: tg.sys})
			if err != nil {
				t.Fatalf("night %d: %s on %s: %v", night, tg.bench.Name(), tg.sys, err)
			}
			if !rep.Pass() {
				t.Fatalf("night %d: %s on %s failed: %v", night, tg.bench.Name(), tg.sys, rep.Entry.Extra)
			}
		}
	}

	// Assimilate both nights across all systems in one pass.
	frame, err := postprocess.LoadFrame(perflogs)
	if err != nil {
		t.Fatal(err)
	}
	if frame.NumRows() != 2*len(matrix) {
		t.Fatalf("assimilated %d rows, want %d", frame.NumRows(), 2*len(matrix))
	}
	// Regression check per (system, benchmark) group on the HPGMG FOM.
	hpgmgOnly, err := frame.FilterEq("benchmark", "hpgmg-fv")
	if err != nil {
		t.Fatal(err)
	}
	reports, err := postprocess.CheckRegressions(hpgmgOnly, []string{"system", "benchmark"}, "l0", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("regression groups = %d, want 4", len(reports))
	}
	for _, r := range reports {
		if r.Flagged {
			t.Errorf("deterministic rerun flagged as regression: %+v", r)
		}
		if r.Latest <= 0 {
			t.Errorf("group %s has no data", r.Group)
		}
	}
	// The energy captures are present for every run (future-work feature).
	if !frame.Has("est_energy_j") {
		t.Error("energy capture column missing")
	}
	// And a chart of the survey renders without manual data handling.
	cfg := &postprocess.PlotConfig{X: "system", Y: "l0", Title: "nightly HPGMG"}
	chart, err := postprocess.BarChart(hpgmgOnly, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "archer2") {
		t.Errorf("chart:\n%s", chart)
	}
}

// TestJobTimeoutFailsRun injects a payload that exceeds the scheduler's
// time limit; the pipeline must record a failed run, not hang or pass.
func TestJobTimeoutFailsRun(t *testing.T) {
	dir := t.TempDir()
	runner := core.New(filepath.Join(dir, "install"), "")
	b := NewHPGMG()
	// An enormous problem: simulated runtime exceeds the 1 h default
	// time limit on the slow Isambard MACS nodes.
	b.Log2BoxDim = 9
	b.BoxesPerRank = 512
	rep, err := runner.Run(b, core.Options{System: "isambard-macs:cascadelake"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatalf("timed-out job passed: runtime %.1fs", rep.Job.Runtime())
	}
	if !strings.Contains(rep.Entry.Extra["error"], "TIMEOUT") {
		t.Errorf("error = %q, want TIMEOUT state", rep.Entry.Extra["error"])
	}
}
