package suite

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func testRunner(t *testing.T) *core.Runner {
	t.Helper()
	dir := t.TempDir()
	r := core.New(filepath.Join(dir, "install"), filepath.Join(dir, "perflogs"))
	r.Now = func() time.Time { return time.Date(2023, 7, 7, 12, 0, 0, 0, time.UTC) }
	return r
}

func TestRegistry(t *testing.T) {
	if len(All()) < 3 {
		t.Fatalf("suite has %d benchmarks", len(All()))
	}
	b, err := ByName("hpgmg-fv")
	if err != nil || b.Name() != "hpgmg-fv" {
		t.Errorf("ByName: %v, %v", b, err)
	}
	if _, err := ByName("linpack"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestNormalizeModelSpec(t *testing.T) {
	cases := []struct{ in, want string }{
		{"babelstream%gcc@9.2.0 +omp", "babelstream%gcc@9.2.0 model=omp"},
		{"babelstream +cuda", "babelstream model=cuda"},
		{"babelstream model=tbb", "babelstream model=tbb"},
		{"babelstream ~omp", "babelstream"}, // negative toggle just drops
		{"hpcg +openmp", "hpcg +openmp"},    // other packages untouched
	}
	for _, c := range cases {
		got, err := NormalizeModelSpec(c.in)
		if err != nil {
			t.Errorf("NormalizeModelSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("NormalizeModelSpec(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := NormalizeModelSpec("babelstream +omp +cuda"); err == nil {
		t.Error("two models accepted")
	}
	if _, err := NormalizeModelSpec("@bad"); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestHPGMGTable4ThroughPipeline(t *testing.T) {
	// The full §3.3 workflow: the same benchmark + command-line layout
	// on four systems, FOMs landing in perflogs, values matching
	// Table 4's shape.
	r := testRunner(t)
	b := NewHPGMG()
	paper := map[string][3]float64{
		"archer2":       {95.36, 83.43, 62.18},
		"cosma8":        {81.67, 72.96, 75.09},
		"csd3":          {126.10, 94.39, 49.40},
		"isambard-macs": {30.59, 25.55, 17.55},
	}
	targets := map[string]string{
		"archer2":       "archer2",
		"cosma8":        "cosma8",
		"csd3":          "csd3",
		"isambard-macs": "isambard-macs:cascadelake",
	}
	for sys, target := range targets {
		rep, err := r.Run(b, core.Options{System: target})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if !rep.Pass() {
			t.Fatalf("%s: run failed: %v", sys, rep.Entry.Extra)
		}
		for i, lvl := range []string{"l0", "l1", "l2"} {
			got := rep.FOMs[lvl].Value
			want := paper[sys][i]
			if rel := math.Abs(got-want) / want; rel > 0.25 {
				t.Errorf("%s %s = %.2f MDOF/s, paper %.2f (rel %.2f)", sys, lvl, got, want, rel)
			}
		}
		// The hpgmg build must have used the system MPI (Table 3).
		joined := strings.Join(rep.SpecTrace, "\n")
		if !strings.Contains(joined, "mpi: virtual provided by") {
			t.Errorf("%s: MPI resolution missing from trace", sys)
		}
	}
}

func TestHPCGVariantsThroughPipeline(t *testing.T) {
	r := testRunner(t)
	// Original CSR on the simulated Isambard Cascade Lake, MPI-only.
	rep, err := r.Run(NewHPCG("original"), core.Options{System: "isambard-macs:cascadelake"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("run failed: %v", rep.Entry.Extra)
	}
	got := rep.FOMs["gflops"].Value
	if math.Abs(got-24.0)/24.0 > 0.2 {
		t.Errorf("original CSR = %.1f GF/s, paper 24.0", got)
	}
	// The matrix-free variant must beat it.
	rep2, err := r.Run(NewHPCG("matrix-free"), core.Options{System: "isambard-macs:cascadelake"})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FOMs["gflops"].Value <= got {
		t.Error("matrix-free should beat original CSR")
	}
	// intel-avx2 on an AMD system must fail to concretize (Table 2 N/A).
	if _, err := r.Run(NewHPCG("intel-avx2"), core.Options{System: "archer2"}); err == nil {
		t.Error("intel-avx2 on archer2 should be rejected")
	}
}

func TestBabelStreamSurveyThroughPipeline(t *testing.T) {
	r := testRunner(t)
	// OpenMP on the simulated Milan system (the 2^29 array platform).
	rep, err := r.Run(NewBabelStream("omp"), core.Options{System: "paderborn-milan"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("run failed: %v", rep.Entry.Extra)
	}
	triad := rep.FOMs["triad_mbps"].Value / 1000 / 1000 // MB/s -> GB/s... MBps value is in MB/s
	_ = triad
	gbs := rep.FOMs["triad_mbps"].Value / 1000
	eff := gbs / 409.6
	if eff < 0.7 || eff > 0.95 {
		t.Errorf("Milan OpenMP Triad efficiency = %.2f", eff)
	}
	// CUDA on a CPU partition must fail at run time (the Fig. 2 "*").
	repBad, err := r.Run(NewBabelStream("cuda"), core.Options{System: "csd3"})
	if err != nil {
		t.Fatal(err)
	}
	if repBad.Pass() {
		t.Error("CUDA on a CPU system should not pass")
	}
	// CUDA on the Volta partition passes near peak.
	repV, err := r.Run(NewBabelStream("cuda"), core.Options{System: "isambard-macs:volta"})
	if err != nil {
		t.Fatal(err)
	}
	if !repV.Pass() {
		t.Fatalf("volta run failed: %v", repV.Entry.Extra)
	}
	if eff := repV.FOMs["triad_mbps"].Value / 1000 / 900; eff < 0.88 {
		t.Errorf("CUDA/Volta efficiency = %.2f", eff)
	}
}

func TestSuiteRunsForRealOnLocalSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("real host runs take seconds")
	}
	r := testRunner(t)
	// BabelStream: genuinely runs the Go kernels.
	bs := NewBabelStream("omp")
	bs.ArraySize = 1 << 20
	bs.NumTimes = 5
	rep, err := r.Run(bs, core.Options{System: "local"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("local babelstream failed: %v", rep.Entry.Extra)
	}
	if rep.FOMs["triad_mbps"].Value <= 0 {
		t.Error("no measured triad rate")
	}
	// HPCG: real CG solve.
	h := NewHPCG("matrix-free")
	rep2, err := r.Run(h, core.Options{System: "local"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Pass() {
		t.Fatalf("local hpcg failed: %v", rep2.Entry.Extra)
	}
	// HPGMG: real multigrid solve.
	g := NewHPGMG()
	g.HostLog2Dim = 4
	rep3, err := r.Run(g, core.Options{System: "local"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Pass() {
		t.Fatalf("local hpgmg failed: %v", rep3.Entry.Extra)
	}
	if rep3.FOMs["l0"].Value <= 0 {
		t.Error("no measured l0 rate")
	}
}

func TestLayoutOverrideFlowsToSimulation(t *testing.T) {
	// Halving the node count must slow the simulated HPGMG solve.
	r := testRunner(t)
	b := NewHPGMG()
	full, err := r.Run(b, core.Options{System: "archer2"})
	if err != nil {
		t.Fatal(err)
	}
	small, err := r.Run(b, core.Options{System: "archer2", NumTasks: 4, TasksPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if small.FOMs["l0"].Value >= full.FOMs["l0"].Value {
		t.Errorf("4-task run (%.1f) should be slower than 8-task (%.1f)",
			small.FOMs["l0"].Value, full.FOMs["l0"].Value)
	}
}

func TestLocalDistributedHPCG(t *testing.T) {
	// A multi-task local HPCG run executes the goroutine-rank solver.
	r := testRunner(t)
	b := NewHPCG("matrix-free")
	rep, err := r.Run(b, core.Options{System: "local", NumTasks: 4, TasksPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("distributed local run failed: %v", rep.Entry.Extra)
	}
	if rep.FOMs["gflops"].Value <= 0 {
		t.Error("no GFLOP/s extracted")
	}
	if !strings.Contains(rep.Job.Stdout, "ranks=4") {
		t.Errorf("stdout does not show the rank count:\n%s", rep.Job.Stdout)
	}
}

func TestLocalDistributedHPGMG(t *testing.T) {
	r := testRunner(t)
	b := NewHPGMG()
	b.HostLog2Dim = 4
	rep, err := r.Run(b, core.Options{System: "local", NumTasks: 3, TasksPerNode: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("distributed local hpgmg failed: %v", rep.Entry.Extra)
	}
	for _, lvl := range []string{"l0", "l1", "l2"} {
		if rep.FOMs[lvl].Value <= 0 {
			t.Errorf("%s = %g", lvl, rep.FOMs[lvl].Value)
		}
	}
	if !strings.Contains(rep.Job.Stdout, "distributed host run") {
		t.Errorf("stdout:\n%s", rep.Job.Stdout)
	}
}
