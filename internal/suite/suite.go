// Package suite defines the framework's benchmark library: the three
// applications of the paper's case studies (BabelStream §3.1, HPCG §3.2,
// HPGMG-FV §3.3) wrapped as core.Benchmark implementations.
//
// Each benchmark executes for real when targeted at the "local" system
// and through the machine model when targeted at one of the simulated
// UK systems — the same definition, two substrates, which is precisely
// the separation of benchmark from system the methodology prescribes.
package suite

import (
	"fmt"
	"regexp"
	"strings"
	"time"

	"repro/internal/apps/babelstream"
	"repro/internal/apps/hpcg"
	"repro/internal/apps/hpgmg"
	"repro/internal/core"
	"repro/internal/fom"
	"repro/internal/launcher"
	"repro/internal/machine"
	"repro/internal/spec"
)

// ByName returns a benchmark by its registry name.
func ByName(name string) (core.Benchmark, error) {
	for _, b := range All() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("suite: unknown benchmark %q (have %v)", name, Names())
}

// All lists the suite's benchmarks with default settings.
func All() []core.Benchmark {
	return []core.Benchmark{
		NewBabelStream("omp"),
		NewHPCG("original"),
		NewHPGMG(),
	}
}

// Names lists the registry names.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name())
	}
	return out
}

// NormalizeModelSpec rewrites the paper's "+omp"-style BabelStream model
// toggles into the recipe's model= variant, so command lines like
// "babelstream%gcc@9.2.0 +omp" work verbatim.
func NormalizeModelSpec(text string) (string, error) {
	s, err := spec.Parse(text)
	if err != nil {
		return "", err
	}
	if s.Name != "babelstream" {
		return text, nil
	}
	models := map[string]bool{
		"omp": true, "kokkos": true, "cuda": true, "ocl": true, "tbb": true,
		"std-data": true, "std-indices": true, "std-ranges": true, "sycl": true,
	}
	for name, v := range s.Variants {
		if !models[name] || !v.IsBool {
			continue
		}
		if v.Bool {
			if prev, ok := s.Variants["model"]; ok && prev.Str != name {
				return "", fmt.Errorf("suite: spec selects two models (+%s and model=%s)", name, prev.Str)
			}
			s.SetVariant("model", spec.StrVariant(name))
		}
		delete(s.Variants, name)
	}
	return s.String(), nil
}

// --- BabelStream ------------------------------------------------------------

// BabelStream is the §3.1 benchmark definition.
type BabelStream struct {
	Model string
	// ArraySize overrides the automatic cache-defeating size (elements).
	ArraySize int
	// NumTimes is the repetition count.
	NumTimes int
}

// NewBabelStream returns the benchmark configured for one programming
// model.
func NewBabelStream(model string) *BabelStream {
	return &BabelStream{Model: model, NumTimes: 100}
}

// Name implements core.Benchmark.
func (b *BabelStream) Name() string { return "babelstream-" + b.Model }

// BuildSpec implements core.Benchmark.
func (b *BabelStream) BuildSpec() string {
	return fmt.Sprintf("babelstream model=%s", b.Model)
}

// DefaultLayout implements core.Benchmark: one process using the whole
// node (BabelStream is a single-process benchmark).
func (b *BabelStream) DefaultLayout() launcher.Layout {
	return launcher.Layout{NumTasks: 1, TasksPerNode: 1}
}

// Args implements core.Benchmark.
func (b *BabelStream) Args() []string {
	if b.ArraySize > 0 {
		return []string{"-s", fmt.Sprint(b.ArraySize)}
	}
	return nil
}

// Execute implements core.Benchmark.
func (b *BabelStream) Execute(ctx *core.RunContext) (string, time.Duration, error) {
	model := b.Model
	if v, ok := ctx.Spec.Variants["model"]; ok && v.Str != "" {
		model = v.Str
	}
	size := b.ArraySize
	if size == 0 {
		size = babelstream.DefaultArraySize(ctx.Partition.Processor.L3CacheTotalMB())
	}
	if ctx.Local {
		// Real host execution; clamp the array so local smoke runs
		// stay quick while still beating the LLC.
		if size > 1<<26 {
			size = 1 << 26
		}
		cfg := babelstream.Config{ArraySize: size, NumTimes: min(b.NumTimes, 20)}
		start := time.Now()
		res, err := babelstream.Run(cfg)
		if err != nil {
			return "", 0, err
		}
		return res.Output, time.Since(start), nil
	}
	cfg := babelstream.Config{ArraySize: size, NumTimes: b.NumTimes}
	res, err := babelstream.Simulate(ctx.Partition.Processor, machine.ProgModel(model), cfg, ctx.SystemFactor)
	if err != nil {
		return "", 0, err
	}
	// The simulated job occupies the node for roughly NumTimes kernel
	// sweeps.
	perSweep := 5 * 24 * float64(size) / (res.TriadGBs() * 1e9)
	return res.Output, time.Duration(perSweep * float64(cfg.NumTimes) * float64(time.Second)), nil
}

// Sanity implements core.Benchmark.
func (b *BabelStream) Sanity() fom.Sanity {
	return fom.Sanity{
		Require: []*regexp.Regexp{mustRe(`Validation passed`)},
		Forbid:  []*regexp.Regexp{mustRe(`Validation failed`)},
	}
}

// PerfPatterns implements core.Benchmark.
func (b *BabelStream) PerfPatterns() []fom.Pattern {
	var out []fom.Pattern
	for _, k := range babelstream.KernelNames() {
		out = append(out, fom.MustPattern(strings.ToLower(k)+"_mbps", "MB/s", k+`\s+([0-9.]+)`))
	}
	return out
}

// --- HPCG --------------------------------------------------------------------

// HPCG is the §3.2 benchmark definition.
type HPCG struct {
	Variant string
	// Grid is the local problem size for host runs.
	Grid hpcg.Grid
}

// NewHPCG returns the benchmark for one algorithm variant.
func NewHPCG(variant string) *HPCG {
	return &HPCG{Variant: variant, Grid: hpcg.Grid{NX: 32, NY: 32, NZ: 32}}
}

// Name implements core.Benchmark.
func (b *HPCG) Name() string { return "hpcg-" + b.Variant }

// BuildSpec implements core.Benchmark.
func (b *HPCG) BuildSpec() string {
	s := fmt.Sprintf("hpcg variant=%s", b.Variant)
	if b.Variant == "intel-avx2" {
		s += " %oneapi" // vendor binaries need the Intel toolchain
	}
	return s
}

// DefaultLayout implements core.Benchmark: MPI-only, one rank per core
// on a single node (the Table 2 configuration).
func (b *HPCG) DefaultLayout() launcher.Layout {
	return launcher.Layout{NumTasks: 0, TasksPerNode: 0, CPUsPerTask: 1}
}

// Args implements core.Benchmark.
func (b *HPCG) Args() []string {
	return []string{fmt.Sprint(b.Grid.NX), fmt.Sprint(b.Grid.NY), fmt.Sprint(b.Grid.NZ)}
}

// Execute implements core.Benchmark.
func (b *HPCG) Execute(ctx *core.RunContext) (string, time.Duration, error) {
	variant := b.Variant
	if v, ok := ctx.Spec.Variants["variant"]; ok && v.Str != "" {
		variant = v.Str
	}
	if ctx.Local {
		// Multi-task local runs of the matrix-free variant execute the
		// genuinely distributed solver: goroutine ranks, channel halo
		// exchange, barrier allreduce.
		if variant == "matrix-free" && ctx.Layout.NumTasks > 1 && ctx.Layout.NumTasks <= b.Grid.NZ/2 {
			start := time.Now()
			res, err := hpcg.RunDistributed(b.Grid, ctx.Layout.NumTasks, 50, 1e-9)
			if err != nil {
				return "", 0, err
			}
			valid := "Results are valid."
			if !res.Converged && res.MaxErr > 0.5 {
				valid = "Results are INVALID."
			}
			out := fmt.Sprintf("HPCG-Benchmark variant=%s ranks=%d\nIterations=%d\nScaled Residual=%.6e\n%s\nGFLOP/s rating of: %.4f\n",
				variant, res.Ranks, res.Iterations, res.Residual, valid, res.GFlops)
			return out, time.Since(start), nil
		}
		start := time.Now()
		res, err := hpcg.Run(hpcg.Config{Variant: variant, Grid: b.Grid})
		if err != nil {
			return "", 0, err
		}
		return res.Output, time.Since(start), nil
	}
	ranks := ctx.Layout.NumTasks
	if ranks == 0 {
		ranks = ctx.Partition.Processor.TotalCores()
	}
	sim, err := hpcg.Simulate(hpcg.SimConfig{
		Variant:      variant,
		Proc:         ctx.Partition.Processor,
		Ranks:        ranks,
		SystemFactor: ctx.SystemFactor,
	})
	if err != nil {
		return "", 0, err
	}
	if !sim.Supported {
		return "", 0, fmt.Errorf("hpcg %s: %s", variant, sim.Reason)
	}
	out := fmt.Sprintf("HPCG-Benchmark variant=%s\nIterations=50\nScaled Residual=1.0e-09\nResults are valid.\nGFLOP/s rating of: %.4f\n", variant, sim.GFlops)
	// Rough runtime for the scheduler's accounting: HPCG runs a fixed
	// iteration budget.
	return out, 90 * time.Second, nil
}

// Sanity implements core.Benchmark.
func (b *HPCG) Sanity() fom.Sanity {
	return fom.Sanity{
		Require: []*regexp.Regexp{mustRe(`Results are valid`)},
		Forbid:  []*regexp.Regexp{mustRe(`INVALID`)},
	}
}

// PerfPatterns implements core.Benchmark.
func (b *HPCG) PerfPatterns() []fom.Pattern {
	return []fom.Pattern{fom.MustPattern("gflops", "GF/s", `GFLOP/s rating of:\s+([0-9.]+)`)}
}

// --- HPGMG-FV -----------------------------------------------------------------

// HPGMG is the §3.3 benchmark definition.
type HPGMG struct {
	// Log2BoxDim and BoxesPerRank mirror the "7 8" command line.
	Log2BoxDim   int
	BoxesPerRank int
	// HostLog2Dim is the grid exponent for real host runs (kept modest).
	HostLog2Dim int
}

// NewHPGMG returns the benchmark with the paper's parameters.
func NewHPGMG() *HPGMG {
	return &HPGMG{Log2BoxDim: 7, BoxesPerRank: 8, HostLog2Dim: 5}
}

// Name implements core.Benchmark.
func (b *HPGMG) Name() string { return "hpgmg-fv" }

// BuildSpec implements core.Benchmark.
func (b *HPGMG) BuildSpec() string { return "hpgmg%gcc" }

// DefaultLayout implements core.Benchmark: the paper's fixed layout.
func (b *HPGMG) DefaultLayout() launcher.Layout {
	return launcher.Layout{NumTasks: 8, TasksPerNode: 2, CPUsPerTask: 8}
}

// Args implements core.Benchmark.
func (b *HPGMG) Args() []string {
	return []string{fmt.Sprint(b.Log2BoxDim), fmt.Sprint(b.BoxesPerRank)}
}

// Execute implements core.Benchmark.
func (b *HPGMG) Execute(ctx *core.RunContext) (string, time.Duration, error) {
	if ctx.Local {
		// Multi-task local runs use the genuinely distributed solver
		// (goroutine ranks, channel halos, agglomerated coarse grids).
		if ranks := ctx.Layout.NumTasks; ranks > 1 {
			start := time.Now()
			var sb strings.Builder
			sb.WriteString("HPGMG-FV (distributed host run)\n")
			for i, label := range []string{"l0", "l1", "l2"} {
				k := b.HostLog2Dim - i
				if k < 2 {
					break
				}
				r := ranks
				if max := ((1 << k) - 1) / 2; r > max {
					r = max // coarse replays may not fit all ranks
				}
				res, err := hpgmg.RunDistributed(k, r, 30, 1e-8)
				if err != nil {
					return "", 0, err
				}
				fmt.Fprintf(&sb, "average solve rate %s: %.6e DOF/s\n", label, res.MDOFs*1e6)
			}
			return sb.String(), time.Since(start), nil
		}
		start := time.Now()
		res, err := hpgmg.Run(hpgmg.Config{Log2Dim: b.HostLog2Dim})
		if err != nil {
			return "", 0, err
		}
		return res.Output, time.Since(start), nil
	}
	layout := ctx.Layout
	tpn := layout.TasksPerNode
	if tpn == 0 {
		tpn = 2
	}
	nodes := (layout.NumTasks + tpn - 1) / tpn
	levels, err := hpgmg.Simulate(hpgmg.SimConfig{
		System:       ctx.System.Name,
		Proc:         ctx.Partition.Processor,
		Nodes:        nodes,
		TasksPerNode: tpn,
		CPUsPerTask:  layout.CPUsPerTask,
		Log2BoxDim:   b.Log2BoxDim,
		BoxesPerRank: b.BoxesPerRank,
	})
	if err != nil {
		return "", 0, err
	}
	var sb strings.Builder
	sb.WriteString("HPGMG-FV (simulated)\n")
	total := 0.0
	for _, l := range levels {
		fmt.Fprintf(&sb, "average solve rate %s: %.6e DOF/s\n", l.Label, l.MDOFs*1e6)
		total += l.Seconds
	}
	return sb.String(), time.Duration(total * float64(time.Second)), nil
}

// Sanity implements core.Benchmark.
func (b *HPGMG) Sanity() fom.Sanity {
	return fom.Sanity{Require: []*regexp.Regexp{mustRe(`average solve rate l0`)}}
}

// PerfPatterns implements core.Benchmark: the three Table 4 FOMs,
// converted to 10^6 DOF/s at extraction.
func (b *HPGMG) PerfPatterns() []fom.Pattern {
	var out []fom.Pattern
	for _, lvl := range []string{"l0", "l1", "l2"} {
		p := fom.MustPattern(lvl, "MDOF/s", `average solve rate `+lvl+`: ([0-9.e+-]+) DOF/s`)
		p.Scale = 1e-6
		out = append(out, p)
	}
	return out
}

func mustRe(s string) *regexp.Regexp { return regexp.MustCompile(s) }
