// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md's experiment index
// E1–E9). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints its reproduced rows once (so the output is a
// self-contained reproduction report) and then times the code path that
// produces them.
package repro

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/apps/babelstream"
	"repro/internal/apps/hpcg"
	"repro/internal/apps/hpgmg"
	"repro/internal/buildsys"
	"repro/internal/concretize"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/repo"
	"repro/internal/spec"
	"repro/internal/suite"
)

var printOnce sync.Map

// once prints a reproduction block a single time per process, keyed by
// name, so repeated benchmark iterations stay quiet.
func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

// --- E1: Figure 2 — BabelStream Triad efficiency survey ---------------------

func BenchmarkFigure2BabelStream(b *testing.B) {
	models := machine.AllModels()
	targets := babelstream.PaperTargets()
	var cells []babelstream.SurveyCell
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err = babelstream.Survey(models, targets, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	once("figure2", func() {
		fmt.Println("\n=== Figure 2: BabelStream Triad efficiency (model x platform) ===")
		fmt.Printf("%-12s %-28s %10s %10s %6s\n", "model", "platform", "triad GB/s", "peak GB/s", "eff")
		for _, c := range cells {
			if !c.Supported {
				fmt.Printf("%-12s %-28s %10s %10.0f %6s  (%s)\n", c.Model, c.Platform, "*", c.PeakGBs, "*", c.Reason)
				continue
			}
			fmt.Printf("%-12s %-28s %10.1f %10.0f %5.1f%%\n", c.Model, c.Platform, c.TriadGBs, c.PeakGBs, c.Efficiency*100)
		}
	})
}

// --- E2: Table 1 — processor peaks ------------------------------------------

func BenchmarkTable1ProcessorPeaks(b *testing.B) {
	var rows []*platform.Processor
	for i := 0; i < b.N; i++ {
		rows = platform.Table1Processors()
	}
	b.StopTimer()
	once("table1", func() {
		fmt.Println("\n=== Table 1: processors used for BabelStream ===")
		fmt.Printf("%-8s %-22s %16s %22s\n", "Vendor", "Processor", "Cores/CUs", "Peak Mem BW (GB/s)")
		for _, p := range rows {
			fmt.Printf("%-8s %-22s %9dx%-6d %22.1f\n", p.Vendor, p.Name, p.Sockets, p.CoresPerSocket, p.PeakBandwidthGBs)
		}
	})
}

// --- E3/E4: Table 2 — HPCG variants and Equation 1 efficiencies --------------

func BenchmarkTable2HPCGVariants(b *testing.B) {
	var rows []hpcg.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = hpcg.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	once("table2", func() {
		fmt.Println("\n=== Table 2: HPCG variants, GFLOP/s (paper: 24.0/39.0/51.0/18.5 CL; 39.2/NA/124.2/56.0 Rome) ===")
		for _, r := range rows {
			rome := fmt.Sprintf("%6.1f", r.Rome)
			if r.RomeNA {
				rome = "   N/A"
			}
			fmt.Printf("%-16s CL %6.1f   Rome %s\n", r.Variant, r.CascadeLake, rome)
		}
	})
}

func BenchmarkTable2Efficiencies(b *testing.B) {
	var ei, eaCL, eaRome float64
	for i := 0; i < b.N; i++ {
		rows, err := hpcg.Table2()
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]hpcg.Table2Row{}
		for _, r := range rows {
			byName[r.Variant] = r
		}
		ei = byName["intel-avx2"].CascadeLake / byName["original"].CascadeLake
		eaCL = byName["matrix-free"].CascadeLake / byName["original"].CascadeLake
		eaRome = byName["matrix-free"].Rome / byName["original"].Rome
	}
	b.StopTimer()
	once("table2eff", func() {
		fmt.Println("\n=== Equation 1 efficiencies (paper: E_I=1.625, E_A=2.125 CL, E_A=3.168 Rome) ===")
		fmt.Printf("E_I = %.3f   E_A(CL) = %.3f   E_A(Rome) = %.3f\n", ei, eaCL, eaRome)
	})
}

// --- E5: Table 3 — concretized dependencies per system -----------------------

func BenchmarkTable3Concretization(b *testing.B) {
	reg := env.UKRegistry()
	builtin := repo.Builtin()
	systems := []string{"archer2", "cosma8", "csd3", "isambard-macs"}
	type row struct{ sys, gcc, python, mpi string }
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, sysName := range systems {
			cfg := reg.ForSystem(sysName)
			res, err := concretize.Concretize(spec.MustParse("hpgmg%gcc"), cfg.ConcretizeOptions(builtin, "x86_64"))
			if err != nil {
				b.Fatal(err)
			}
			r := row{sys: sysName, gcc: res.Spec.Compiler.Version.String()}
			if p := res.Spec.Lookup("python"); p != nil {
				r.python = p.Version.String()
			}
			for _, name := range []string{"cray-mpich", "mvapich2", "openmpi", "mpich"} {
				if m := res.Spec.Lookup(name); m != nil {
					r.mpi = name + " " + m.Version.String()
					break
				}
			}
			rows = append(rows, r)
		}
	}
	b.StopTimer()
	once("table3", func() {
		fmt.Printf("\n=== Table 3: concretized deps of hpgmg%%gcc (paper: 11.2.0/3.10.12/cray-mpich 8.1.23 etc.) ===\n")
		for _, r := range rows {
			fmt.Printf("%-16s gcc %-8s python %-8s %s\n", r.sys, r.gcc, r.python, r.mpi)
		}
	})
}

// --- E6: Table 4 — HPGMG-FV across systems -----------------------------------

func BenchmarkTable4HPGMG(b *testing.B) {
	var rows []hpgmg.Table4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = hpgmg.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	once("table4", func() {
		fmt.Println("\n=== Table 4: HPGMG-FV MDOF/s (paper: 95.36/83.43/62.18 archer2 ... 30.59/25.55/17.55 isambard) ===")
		for _, r := range rows {
			fmt.Printf("%-16s l0 %7.2f  l1 %7.2f  l2 %7.2f\n", r.System, r.L0, r.L1, r.L2)
		}
	})
}

// --- E7: Table 5 — system inventory ------------------------------------------

func BenchmarkTable5Systems(b *testing.B) {
	var estate *platform.Estate
	for i := 0; i < b.N; i++ {
		estate = platform.UKEstate()
	}
	b.StopTimer()
	once("table5", func() {
		fmt.Println("\n=== Table 5: systems and processors of the study ===")
		for _, name := range estate.Names() {
			sys, _ := estate.System(name)
			for _, p := range sys.Partitions {
				proc := p.Processor
				fmt.Printf("%-16s %-14s %-34s %d cores/socket, %d sockets @ %.2f GHz\n",
					name, p.Name, proc.String(), proc.CoresPerSocket, proc.Sockets, proc.ClockGHz)
			}
		}
	})
}

// --- E8: Spack-built vs manually-built performance parity ---------------------

func BenchmarkSpackVsManualBuild(b *testing.B) {
	// §3.1 observes "no specific degradation ... between building
	// BabelStream via Spack ... from invoking the CMake manually". Here:
	// the benchmark executed out of a framework-managed install performs
	// identically to a direct invocation — same payload, measured both
	// ways on the simulated Milan platform.
	// Use the cache-defeating array the size rule picks for Milan, the
	// same one the framework-managed run will use.
	cfg := babelstream.Config{
		ArraySize: babelstream.DefaultArraySize(platform.EPYCMilan7763.L3CacheTotalMB()),
		NumTimes:  10,
	}
	var direct, managed float64
	for i := 0; i < b.N; i++ {
		res, err := babelstream.Simulate(platform.EPYCMilan7763, machine.OMP, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		direct = res.TriadGBs()
	}
	b.StopTimer()
	tree := b.TempDir()
	runner := core.New(filepath.Join(tree, "install"), "")
	bench := suite.NewBabelStream("omp")
	rep, err := runner.Run(bench, core.Options{System: "paderborn-milan"})
	if err != nil {
		b.Fatal(err)
	}
	managed = rep.FOMs["triad_mbps"].Value / 1000
	once("e8", func() {
		fmt.Printf("\n=== E8: direct run %.1f GB/s vs framework-managed run %.1f GB/s (parity expected) ===\n", direct, managed)
	})
	if managed < direct*0.9 || managed > direct*1.1 {
		b.Fatalf("framework-managed run diverges: %.1f vs %.1f GB/s", managed, direct)
	}
}

// --- E9: rebuild-every-run ablation (Principle 3 cost) -------------------------

func BenchmarkRebuildAblation(b *testing.B) {
	builtin := repo.Builtin()
	reg := env.UKRegistry()
	cfg := reg.ForSystem("archer2")
	res, err := concretize.Concretize(spec.MustParse("babelstream model=omp"), cfg.ConcretizeOptions(builtin, "x86_64"))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		rebuild bool
	}{
		{"RebuildEveryRun", true},
		{"ReuseCache", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			builder := buildsys.NewBuilder(dir, builtin)
			if _, err := builder.Install(res.Spec); err != nil {
				b.Fatal(err)
			}
			builder.RebuildEveryRun = mode.rebuild
			var simulated float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				records, err := builder.Install(res.Spec)
				if err != nil {
					b.Fatal(err)
				}
				simulated = buildsys.TotalBuildTime(records).Seconds()
			}
			b.StopTimer()
			b.ReportMetric(simulated, "simulated-build-s/run")
		})
	}
	once("e9", func() {
		fmt.Println("\n=== E9: Principle 3 ablation — simulated-build-s/run metric shows the")
		fmt.Println("    cost of rebuilding every run vs trusting the cache (and what Principle 3 buys) ===")
	})
}

// --- Real host performance benches (the library's own kernels) ----------------

func BenchmarkHostBabelStreamTriad(b *testing.B) {
	n := 1 << 22
	cfg := babelstream.Config{ArraySize: n, NumTimes: 1}
	var triad float64
	b.SetBytes(int64(3 * 8 * n))
	for i := 0; i < b.N; i++ {
		res, err := babelstream.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		triad = res.MBps["Triad"]
	}
	b.ReportMetric(triad/1000, "GB/s")
}

func BenchmarkHostHPCG(b *testing.B) {
	for _, variant := range hpcg.Variants() {
		b.Run(variant, func(b *testing.B) {
			var gf float64
			for i := 0; i < b.N; i++ {
				res, err := hpcg.Run(hpcg.Config{Variant: variant, Grid: hpcg.Grid{NX: 32, NY: 32, NZ: 32}, MaxIters: 10})
				if err != nil {
					b.Fatal(err)
				}
				gf = res.GFlops
			}
			b.ReportMetric(gf, "GFLOP/s")
		})
	}
}

func BenchmarkHostHPGMG(b *testing.B) {
	var mdofs float64
	for i := 0; i < b.N; i++ {
		res, err := hpgmg.Run(hpgmg.Config{Log2Dim: 5})
		if err != nil {
			b.Fatal(err)
		}
		mdofs, _ = res.FOM("l0")
	}
	b.ReportMetric(mdofs, "MDOF/s")
}

// --- Ablation: array size vs apparent bandwidth (the §3.1 2^29 rationale) ----

func BenchmarkArraySizeAblation(b *testing.B) {
	type point struct {
		log2 int
		gbs  float64
		eff  float64
	}
	var series []point
	for i := 0; i < b.N; i++ {
		series = series[:0]
		for _, k := range []int{20, 22, 24, 25, 27, 29} {
			res, err := babelstream.Simulate(platform.EPYCMilan7763, machine.OMP,
				babelstream.Config{ArraySize: 1 << k, NumTimes: 10}, 1)
			if err != nil {
				b.Fatal(err)
			}
			series = append(series, point{k, res.TriadGBs(), res.TriadGBs() / platform.EPYCMilan7763.PeakBandwidthGBs})
		}
	}
	b.StopTimer()
	once("arraysize", func() {
		fmt.Println("\n=== Ablation: BabelStream array size on Milan (why the paper uses 2^29) ===")
		for _, p := range series {
			warn := ""
			if p.eff > 1 {
				warn = "  <-- cache-inflated, exceeds DRAM peak"
			}
			fmt.Printf("2^%-3d triad %7.1f GB/s   %5.1f%% of peak%s\n", p.log2, p.gbs, p.eff*100, warn)
		}
	})
}

// --- Extension: HPGMG weak scaling on the simulated ARCHER2 -------------------

func BenchmarkWeakScalingHPGMG(b *testing.B) {
	type point struct {
		nodes int
		mdofs float64
	}
	var series []point
	for i := 0; i < b.N; i++ {
		series = series[:0]
		for _, nodes := range []int{1, 2, 4, 8, 16, 32} {
			cfg := hpgmg.PaperConfig("archer2", platform.EPYCRome7742)
			cfg.Nodes = nodes
			levels, err := hpgmg.Simulate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			series = append(series, point{nodes, levels[0].MDOFs})
		}
	}
	b.StopTimer()
	once("weakscaling", func() {
		fmt.Println("\n=== Extension: HPGMG-FV weak scaling on simulated ARCHER2 (boxes/rank fixed) ===")
		base := series[0].mdofs
		for _, p := range series {
			eff := p.mdofs / (base * float64(p.nodes))
			fmt.Printf("%3d nodes   l0 %9.2f MDOF/s   weak-scaling efficiency %5.1f%%\n", p.nodes, p.mdofs, eff*100)
		}
	})
}

// --- Extension: HPCG strong scaling on the simulated ARCHER2 ------------------

func BenchmarkStrongScalingHPCG(b *testing.B) {
	var points []hpcg.ScalePoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = hpcg.SimulateStrongScaling("archer2", platform.EPYCRome7742, 512,
			[]int{1, 2, 4, 8, 16, 32, 64}, 50)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	once("strongscaling", func() {
		fmt.Println("\n=== Extension: HPCG strong scaling, 512^3 on simulated ARCHER2 ===")
		for _, p := range points {
			fmt.Printf("%3d nodes   %9.1f GF/s   speedup %6.2f   parallel efficiency %5.1f%%\n",
				p.Nodes, p.GFlops, p.Speedup, p.Efficiency*100)
		}
	})
}
