// BabelStream survey: reproduces the paper's Figure 2 — the Triad
// memory-bandwidth efficiency of eight programming models across the four
// platforms of Table 1, including the "*" cells where a model cannot run —
// and computes Pennycook's performance-portability metric over the
// platform set (the paper's Principle 1 metric taken to its conclusion).
//
//	go run ./examples/babelstream-survey
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/apps/babelstream"
	"repro/internal/dataframe"
	"repro/internal/fom"
	"repro/internal/machine"
	"repro/internal/postprocess"
)

func main() {
	models := machine.AllModels()
	targets := babelstream.PaperTargets()

	cells, err := babelstream.Survey(models, targets, 100)
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the survey into a DataFrame and pivot into the Figure 2
	// matrix (programming model × platform → efficiency).
	var modelCol, platCol []string
	var effCol []float64
	for _, c := range cells {
		modelCol = append(modelCol, string(c.Model))
		platCol = append(platCol, c.Platform)
		if c.Supported {
			effCol = append(effCol, c.Efficiency)
		} else {
			effCol = append(effCol, math.NaN())
		}
	}
	f := dataframe.New()
	must(f.AddStringColumn("model", modelCol))
	must(f.AddStringColumn("platform", platCol))
	must(f.AddFloatColumn("efficiency", effCol))
	pt, err := f.Pivot("model", "platform", "efficiency")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(postprocess.Heatmap(pt, "Figure 2: BabelStream Triad efficiency (fraction of Table 1 peak)"))
	fmt.Println("cells marked * cannot run on that platform:")
	for _, c := range cells {
		if !c.Supported {
			fmt.Printf("  %-12s on %-28s %s\n", c.Model, c.Platform, c.Reason)
		}
	}

	// Performance portability across the full platform set.
	fmt.Println("\nPennycook performance portability PP(a, triad, H) over the four platforms:")
	for _, m := range models {
		var effs []float64
		for _, c := range cells {
			if c.Model != m {
				continue
			}
			if c.Supported {
				effs = append(effs, c.Efficiency)
			} else {
				effs = append(effs, 0)
			}
		}
		pp := fom.PerfPortability(effs)
		if pp == 0 {
			fmt.Printf("  %-12s PP = 0 (does not run everywhere)\n", m)
			continue
		}
		fmt.Printf("  %-12s PP = %.1f%%\n", m, pp*100)
	}
	fmt.Println("\nOnly OpenMP and Kokkos run on every platform in H, so every other")
	fmt.Println("model's PP collapses to zero — the paper's motivating observation.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
