// HPGMG provision survey: reproduces the paper's §3.3 case study — the
// same benchmark, spec (hpgmg%gcc), and fixed layout (8 tasks, 2 per
// node, 8 CPUs per task; arguments "7 8") driven through the full
// pipeline on the four UK systems. Along the way it prints Table 3 (the
// concretized dependency versions each system's environment produced) and
// Table 4 (the three DOF/s Figures of Merit), then assimilates the
// perflogs into a bar chart — the complete Figure 1 workflow.
//
//	go run ./examples/hpgmg-provision
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/postprocess"
	"repro/internal/suite"
)

func main() {
	workdir, err := os.MkdirTemp("", "exabench-hpgmg-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)
	perflogs := filepath.Join(workdir, "perflogs")
	runner := core.New(filepath.Join(workdir, "install"), perflogs)

	bench := suite.NewHPGMG()
	targets := []string{"archer2", "cosma8", "csd3", "isambard-macs:cascadelake"}

	reports, err := runner.RunMany(bench, targets, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Table 3: concretized build dependencies of hpgmg%%gcc per system\n")
	fmt.Printf("%-24s %-10s %-10s %s\n", "System", "gcc", "Python", "MPI library")
	for _, rep := range reports {
		gcc := rep.Spec.Compiler.Version.String()
		python := "?"
		if p := rep.Spec.Lookup("python"); p != nil {
			python = p.Version.String()
		}
		mpi := "?"
		for _, name := range []string{"cray-mpich", "mvapich2", "openmpi", "mpich"} {
			if m := rep.Spec.Lookup(name); m != nil {
				mpi = fmt.Sprintf("%s %s", name, m.Version.String())
				break
			}
		}
		fmt.Printf("%-24s %-10s %-10s %s\n", rep.System, gcc, python, mpi)
	}

	fmt.Println("\nTable 4: HPGMG-FV Figures of Merit (10^6 DOF/s)")
	fmt.Printf("%-24s %8s %8s %8s\n", "System", "l0", "l1", "l2")
	for _, rep := range reports {
		if !rep.Pass() {
			log.Fatalf("%s failed: %v", rep.System, rep.Entry.Extra)
		}
		fmt.Printf("%-24s %8.2f %8.2f %8.2f\n",
			rep.System, rep.FOMs["l0"].Value, rep.FOMs["l1"].Value, rep.FOMs["l2"].Value)
	}
	fmt.Println("(paper:  archer2 95.36/83.43/62.18, cosma8 81.67/72.96/75.09,")
	fmt.Println("         csd3 126.10/94.39/49.40, isambard 30.59/25.55/17.55)")

	// Principle 6: assimilate the perflogs the runs just wrote and plot.
	frame, err := postprocess.LoadFrame(perflogs)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := postprocess.ParsePlotConfig(`
title: HPGMG-FV l0 solve rate by system (MDOF/s)
x: system
y: l0
sort: ascending
filters:
  - column: result
    op: ==
    value: pass
`)
	if err != nil {
		log.Fatal(err)
	}
	chart, err := postprocess.BarChart(frame, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(chart)

	fmt.Println("\nOne job script, for the record (ARCHER2):")
	fmt.Println(indent(reports[0].JobScript))
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}
