// Custom benchmark: shows the two extension points the methodology is
// designed around — adding a *new benchmark* (implement core.Benchmark:
// build spec, layout, sanity and performance patterns, payload) and
// adding a *new system* (a platform description plus an environment
// config), then running the benchmark on both the local machine and the
// new system without changing the benchmark itself. This is the paper's
// claim that "benchmarks can be written on one system and subsequently
// run on any other".
//
//	go run ./examples/custom-benchmark
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/fom"
	"repro/internal/launcher"
	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/spec"
)

// pingpong is a toy latency benchmark: it "bounces" a message between two
// ranks and reports the round-trip time. On the local system it measures
// a channel round trip for real; on simulated systems it queries the
// interconnect model.
type pingpong struct{}

func (pingpong) Name() string      { return "pingpong" }
func (pingpong) BuildSpec() string { return "stream" } // reuse a trivial recipe
func (pingpong) DefaultLayout() launcher.Layout {
	return launcher.Layout{NumTasks: 2, TasksPerNode: 1, CPUsPerTask: 1}
}
func (pingpong) Args() []string { return []string{"--bytes", "8"} }

func (pingpong) Execute(ctx *core.RunContext) (string, time.Duration, error) {
	var rtt float64
	if ctx.Local {
		ch1, ch2 := make(chan struct{}), make(chan struct{})
		go func() {
			for i := 0; i < 1000; i++ {
				<-ch1
				ch2 <- struct{}{}
			}
		}()
		start := time.Now()
		for i := 0; i < 1000; i++ {
			ch1 <- struct{}{}
			<-ch2
		}
		rtt = time.Since(start).Seconds() / 1000
	} else {
		net := machine.NetworkFor(ctx.System.Name)
		rtt = 2 * net.MessageTime(8)
	}
	out := fmt.Sprintf("pingpong complete\nround trip: %.3f us\n", rtt*1e6)
	return out, time.Duration(1000 * rtt * float64(time.Second)), nil
}

func (pingpong) Sanity() fom.Sanity {
	return fom.Sanity{Require: []*regexp.Regexp{regexp.MustCompile(`pingpong complete`)}}
}

func (pingpong) PerfPatterns() []fom.Pattern {
	return []fom.Pattern{fom.MustPattern("rtt_us", "us", `round trip: ([0-9.]+) us`)}
}

func main() {
	workdir, err := os.MkdirTemp("", "exabench-custom-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)
	runner := core.New(filepath.Join(workdir, "install"), filepath.Join(workdir, "perflogs"))

	// --- Add a new system to the estate --------------------------------
	// A hypothetical Grace-like arm64 machine: platform description...
	graceProc := &platform.Processor{
		Vendor: "NVIDIA", Name: "Grace", Microarch: "host", // reuse host calibration
		Kind: platform.CPU, Arch: platform.AArch64,
		Sockets: 2, CoresPerSocket: 72, ClockGHz: 3.1,
		L3CachePerSocketMB: 114, MemoryGB: 480, NUMADomains: 2,
		PeakBandwidthGBs: 1024, PeakGFlopsFP64: 2 * 72 * 3.1 * 16,
	}
	if err := runner.Estate.Add(&platform.System{
		Name: "gracehopper",
		Site: "example",
		Partitions: []platform.Partition{{
			Name: "compute", Processor: graceProc, Nodes: 16,
			Scheduler: "slurm", Launcher: "srun", Environs: []string{"gcc"},
		}},
	}); err != nil {
		log.Fatal(err)
	}
	// ...plus an environment config (compilers; no externals yet — the
	// framework creates the "basic environment" automatically otherwise).
	if err := runner.Envs.Add(&env.SystemConfig{
		System:    "gracehopper",
		Compilers: []spec.Compiler{{Name: "gcc", Version: spec.ExactVersion("12.1.0")}},
		Account:   "demo",
	}); err != nil {
		log.Fatal(err)
	}

	// --- Run the new benchmark everywhere -------------------------------
	for _, target := range []string{"local", "archer2", "cosma8", "gracehopper"} {
		rep, err := runner.Run(pingpong{}, core.Options{System: target})
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Pass() {
			log.Fatalf("%s: %v", target, rep.Entry.Extra)
		}
		fmt.Printf("%-14s rtt = %7.3f us   (scheduler %s, job #%d)\n",
			target, rep.FOMs["rtt_us"].Value, rep.Job.Job.Name, rep.Job.ID)
	}
	fmt.Println("\nThe benchmark definition never mentioned a scheduler, launcher,")
	fmt.Println("compiler, or node count — those all came from the system configs.")
}
