// Quickstart: run a benchmark from the suite on the local machine — the
// framework's minimal end-to-end path. The same call with a different
// Options.System value targets any of the simulated UK HPC systems.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fom"
	"repro/internal/suite"
)

func main() {
	workdir, err := os.MkdirTemp("", "exabench-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)

	// A Runner owns the install tree (build cache) and the perflog
	// root. Principle 3 (rebuild every run) is on by default.
	runner := core.New(filepath.Join(workdir, "install"), filepath.Join(workdir, "perflogs"))

	// BabelStream with the OpenMP-style host kernels, sized for a quick
	// demonstration run.
	bench := suite.NewBabelStream("omp")
	bench.ArraySize = 1 << 22 // 4M doubles per array
	bench.NumTimes = 20

	fmt.Println("== running BabelStream on the local system (real execution) ==")
	report, err := runner.Run(bench, core.Options{System: "local"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec:   %s\n", report.Spec.RootString())
	fmt.Printf("status: %s\n", report.Job.State)
	fmt.Println("build records (Principle 3: the root rebuilds every run):")
	for _, rec := range report.Builds {
		fmt.Printf("  %-9s %s\n", rec.State(), rec.SpecText)
	}
	fmt.Println("figures of merit:")
	fmt.Print(fom.Table(report.FOMs))

	// The same benchmark, now on a simulated system from the paper.
	fmt.Println("\n== the same benchmark on the simulated Milan system ==")
	report2, err := runner.Run(bench, core.Options{
		System: "paderborn-milan",
		Spec:   "babelstream%gcc@12.1.0 model=omp",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec:   %s\n", report2.Spec.RootString())
	fmt.Println("figures of merit:")
	fmt.Print(fom.Table(report2.FOMs))
	triad := report2.FOMs["triad_mbps"].Value / 1000
	fmt.Printf("triad efficiency vs 409.6 GB/s peak: %.0f%%\n", triad/409.6*100)
}
