// HPCG variants: reproduces the paper's §3.2 case study — Table 2 (the
// four HPCG variants on Intel Cascade Lake and AMD Rome) and the
// Equation 1 efficiency ratios showing that the algorithmic gain
// (CSR → matrix-free) exceeds the implementation gain (CSR → vendor
// binaries). Also runs the variants for real on the host to show the
// same ordering emerges from genuine execution.
//
//	go run ./examples/hpcg-variants
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/hpcg"
	"repro/internal/fom"
)

func main() {
	fmt.Println("Table 2: HPCG variants in GFLOP/s (simulated platforms, MPI only, single node)")
	fmt.Println()
	rows, err := hpcg.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %20s %12s\n", "HPCG Variant", "Intel Cascade Lake", "AMD Rome")
	byName := map[string]hpcg.Table2Row{}
	for _, r := range rows {
		byName[r.Variant] = r
		rome := fmt.Sprintf("%.1f", r.Rome)
		if r.RomeNA {
			rome = "N/A"
		}
		fmt.Printf("%-16s %20.1f %12s\n", r.Variant, r.CascadeLake, rome)
	}

	fmt.Println("\nEquation 1 efficiencies E = VAR/ORIG:")
	ei := fom.Ratio(byName["intel-avx2"].CascadeLake, byName["original"].CascadeLake)
	eaCL := fom.Ratio(byName["matrix-free"].CascadeLake, byName["original"].CascadeLake)
	eaRome := fom.Ratio(byName["matrix-free"].Rome, byName["original"].Rome)
	fmt.Printf("  E_I (implementation, Intel binaries, CL) = %.3f   (paper: 1.625)\n", ei)
	fmt.Printf("  E_A (algorithm, matrix-free, CL)         = %.3f   (paper: 2.125)\n", eaCL)
	fmt.Printf("  E_A (algorithm, matrix-free, Rome)       = %.3f   (paper: 3.168)\n", eaRome)
	fmt.Println("  => algorithmic optimisation beats implementation optimisation,")
	fmt.Println("     echoing the 2010 SCALES report observation the paper cites.")

	fmt.Println("\nReal host execution (Go kernels, 48^3 grid, 15 CG iterations):")
	grid := hpcg.Grid{NX: 48, NY: 48, NZ: 48}
	var orig float64
	for _, variant := range hpcg.Variants() {
		res, err := hpcg.Run(hpcg.Config{Variant: variant, Grid: grid, MaxIters: 15})
		if err != nil {
			log.Fatal(err)
		}
		status := "valid"
		if !res.Valid {
			status = "INVALID"
		}
		fmt.Printf("  %-16s %7.3f GF/s  (%d iterations, %s)\n", variant, res.GFlops, res.Iterations, status)
		if variant == "original" {
			orig = res.GFlops
		}
		if variant == "matrix-free" && orig > 0 {
			fmt.Printf("  %-16s host E_A = %.2f\n", "", res.GFlops/orig)
		}
	}
}
