// Scaling study: the kind of follow-on experiment the framework makes
// cheap once systems and benchmarks are configured (the paper's ongoing
// work on "scaling ... plots", §2.4). Three parts:
//
//  1. a real distributed HPCG solve on this machine — goroutine ranks,
//     channel halo exchanges, barrier allreduces — swept over rank counts;
//
//  2. simulated HPCG strong scaling on ARCHER2 (fixed 512^3 problem);
//
//  3. simulated HPGMG weak scaling on ARCHER2 (fixed work per rank).
//
//     go run ./examples/scaling-study
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/hpcg"
	"repro/internal/apps/hpgmg"
	"repro/internal/platform"
)

func main() {
	fmt.Println("== 1. Real distributed HPCG on this machine (matrix-free, 32x32x48) ==")
	grid := hpcg.Grid{NX: 32, NY: 32, NZ: 48}
	var base float64
	for _, ranks := range []int{1, 2, 4, 8} {
		res, err := hpcg.RunDistributed(grid, ranks, 200, 1e-9)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Seconds
		}
		status := "converged"
		if !res.Converged {
			status = "NOT converged"
		}
		fmt.Printf("  %2d ranks  %7.3f GF/s  %3d iters  speedup %.2f  (%s, err %.1e)\n",
			ranks, res.GFlops, res.Iterations, base/res.Seconds, status, res.MaxErr)
	}
	fmt.Println("  (host speedup is bounded by this machine's memory bandwidth, not rank count)")

	fmt.Println("\n== 2. Simulated HPCG strong scaling, 512^3 on ARCHER2 ==")
	points, err := hpcg.SimulateStrongScaling("archer2", platform.EPYCRome7742, 512,
		[]int{1, 2, 4, 8, 16, 32, 64, 128}, 50)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("  %3d nodes  %9.1f GF/s  speedup %7.2f  efficiency %5.1f%%\n",
			p.Nodes, p.GFlops, p.Speedup, p.Efficiency*100)
	}

	fmt.Println("\n== 2b. Real distributed HPGMG on this machine (63^3, V(2,2)-cycles) ==")
	for _, ranks := range []int{1, 2, 4} {
		res, err := hpgmg.RunDistributed(6, ranks, 30, 1e-9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d ranks  %7.2f MDOF/s  %d cycles  rel res %.2e  converged=%v\n",
			ranks, res.MDOFs, res.Cycles, res.Residual, res.Converged)
	}
	fmt.Println("  (identical cycle counts: the distributed algorithm is numerically")
	fmt.Println("   equal to the serial one — same colouring, same transfers)")

	fmt.Println("\n== 3. Simulated HPGMG weak scaling on ARCHER2 (paper's per-rank size) ==")
	var weakBase float64
	for _, nodes := range []int{1, 2, 4, 8, 16, 32, 64} {
		cfg := hpgmg.PaperConfig("archer2", platform.EPYCRome7742)
		cfg.Nodes = nodes
		levels, err := hpgmg.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if weakBase == 0 {
			weakBase = levels[0].MDOFs
		}
		eff := levels[0].MDOFs / (weakBase * float64(nodes))
		fmt.Printf("  %3d nodes  l0 %9.2f MDOF/s  weak efficiency %5.1f%%\n", nodes, levels[0].MDOFs, eff*100)
	}
}
